"""The stepping IR interpreter.

``ExecutionContext`` is one logical thread: a call stack of frames plus a
``step()`` method executing exactly one instruction.  The top-level
:class:`Interpreter` owns memory, globals and the native-function registry
(the simulated OpenMP runtime and a libc subset); the runtime's thread
teams are additional ``ExecutionContext`` instances stepped round-robin by
``__kmpc_fork_call`` (see :mod:`repro.runtime.kmp`).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.instrument import ExecutionProfile, time_trace_scope
from repro.instrument.faultinject import FAULTS
from repro.interp.memory import Memory, MemoryError_
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BinOp,
    BranchInst,
    CallInst,
    CastInst,
    CastOp,
    CondBranchInst,
    FCmpInst,
    FCmpPred,
    GEPInst,
    ICmpInst,
    ICmpPred,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    IRType,
    PointerType,
    StructType,
)
from repro.ir.values import (
    Argument,
    ConstantFP,
    ConstantInt,
    ConstantPointerNull,
    GlobalVariable,
    UndefValue,
    Value,
)


class InterpreterError(Exception):
    pass


class ExecutionTimeout(InterpreterError):
    """Fuel or wall-clock budget exhausted.

    Carries a :class:`SchedulerSnapshot` so the driver can show *where*
    every logical thread was when the budget ran out — the difference
    between "it hung" and "thread 2 spun at barrier episode 3".
    """

    def __init__(
        self, message: str, snapshot: "SchedulerSnapshot | None" = None
    ) -> None:
        super().__init__(message)
        self.snapshot = snapshot


class DeadlockError(InterpreterError):
    """All-threads-blocked condition that can never resolve (a barrier a
    finished teammate will never reach, or a cyclic lock wait)."""

    def __init__(
        self, message: str, snapshot: "SchedulerSnapshot | None" = None
    ) -> None:
        super().__init__(message)
        self.snapshot = snapshot


class Trap(Exception):
    """Guest program trap (abort, unreachable, assertion failure)."""


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"
    BARRIER = "barrier"
    DONE = "done"


#: Sentinel a native may return to indicate "retry this call on the next
#: step" (used to implement spinlocks for `critical` under deterministic
#: round-robin interleaving).
RETRY = object()


@dataclass
class ThreadSnapshot:
    """Frozen view of one logical thread for abort reports."""

    gtid: int
    thread_id: int
    state: str
    function: str
    instruction: str
    instructions_retired: int
    barrier_waits: int
    waiting_at: str | None = None
    waiting_on_lock: int | None = None

    def render(self) -> str:
        where = (
            f"@{self.function}: {self.instruction}"
            if self.function
            else "<no frame>"
        )
        line = (
            f"  thread {self.gtid} (tid {self.thread_id}): "
            f"{self.state:<8} {where}  "
            f"[{self.instructions_retired} insts, "
            f"{self.barrier_waits} barrier waits]"
        )
        if self.waiting_at:
            line += f"\n      waiting at {self.waiting_at}"
        if self.waiting_on_lock is not None:
            line += f"\n      waiting on lock {self.waiting_on_lock:#x}"
        return line


@dataclass
class SchedulerSnapshot:
    """State of every logical thread at the moment an execution
    guardrail fired (fuel, timeout, deadlock)."""

    threads: list[ThreadSnapshot] = field(default_factory=list)
    total_instructions: int = 0
    barrier_episodes: int = 0

    def render(self) -> str:
        lines = [
            "Scheduler state at abort:",
            f"  {len(self.threads)} logical thread(s), "
            f"{self.total_instructions} instructions retired, "
            f"{self.barrier_episodes} barrier episode(s)",
        ]
        lines.extend(t.render() for t in self.threads)
        return "\n".join(lines)


def scheduler_snapshot(interp: "Interpreter") -> SchedulerSnapshot:
    """Capture every registered ExecutionContext of *interp*."""
    snap = SchedulerSnapshot(
        total_instructions=interp.profile.total_instructions,
        barrier_episodes=interp.profile.barrier_episodes,
    )
    for ctx in interp.profile.contexts:
        function = ""
        instruction = ""
        if ctx.stack:
            frame = ctx.frame
            function = frame.fn.name
            if frame.index < len(frame.block.instructions):
                inst = frame.block.instructions[frame.index]
                instruction = (
                    f"{frame.block.name}[{frame.index}] "
                    f"({type(inst).__name__})"
                )
            else:
                instruction = f"{frame.block.name}[end]"
        snap.threads.append(
            ThreadSnapshot(
                gtid=ctx.gtid,
                thread_id=ctx.thread_id,
                state=ctx.state.value,
                function=function,
                instruction=instruction,
                instructions_retired=ctx.instructions_retired,
                barrier_waits=ctx.barrier_waits,
                waiting_at=ctx.waiting_at,
                waiting_on_lock=ctx.waiting_on_lock,
            )
        )
    return snap


class Frame:
    def __init__(self, fn: Function, args: list[Any], stack_mark: int):
        self.fn = fn
        self.block: BasicBlock = fn.entry_block
        self.prev_block: BasicBlock | None = None
        self.index = 0
        self.registers: dict[int, Any] = {}
        for formal, actual in zip(fn.args, args):
            self.registers[id(formal)] = actual
        self.stack_mark = stack_mark
        #: set by Call handling: instruction waiting for a return value
        self.pending_call: Instruction | None = None


class ExecutionContext:
    """One logical thread of execution."""

    #: default per-thread stack size (bytes)
    STACK_SIZE = 1 << 19

    def __init__(
        self,
        interp: "Interpreter",
        fn: Function,
        args: list[Any],
        thread_id: int = 0,
        stack_size: int | None = None,
    ) -> None:
        self.interp = interp
        self.stack: list[Frame] = []
        self.state = ThreadState.RUNNABLE
        self.return_value: Any = None
        self.thread_id = thread_id
        #: global thread number (OpenMP gtid); set by the runtime
        self.gtid = thread_id
        #: the runtime team this context belongs to (None when serial)
        self.team = None
        #: dynamic instructions executed by this logical thread
        self.instructions_retired = 0
        #: barrier episodes this thread waited at
        self.barrier_waits = 0
        #: human-readable description of the barrier currently waited at
        #: (None while runnable); feeds SchedulerSnapshot
        self.waiting_at: str | None = None
        #: lock address this thread is spinning on (critical sections)
        self.waiting_on_lock: int | None = None
        interp.profile.register(self)
        # Each logical thread gets its own stack region so interleaved
        # frame pushes/pops cannot corrupt each other.
        size = stack_size or self.STACK_SIZE
        self.stack_base = interp.memory.allocate(size)
        self.stack_end = self.stack_base + size
        self.stack_ptr = self.stack_base
        self._push_frame(fn, args)

    def stack_alloc(self, size: int, align: int = 8) -> int:
        addr = (self.stack_ptr + align - 1) // align * align
        if addr + size > self.stack_end:
            raise InterpreterError("guest stack overflow")
        self.stack_ptr = addr + max(1, size)
        return addr

    # ------------------------------------------------------------------
    def _push_frame(self, fn: Function, args: list[Any]) -> None:
        if fn.is_declaration:
            raise InterpreterError(
                f"call to undefined function @{fn.name}"
            )
        if len(self.stack) >= self.interp.max_call_depth:
            raise InterpreterError(
                f"guest call depth exceeded the limit of "
                f"{self.interp.max_call_depth} frames while calling "
                f"@{fn.name} (runaway recursion?)"
            )
        self.stack.append(Frame(fn, args, self.stack_ptr))

    @property
    def frame(self) -> Frame:
        return self.stack[-1]

    @property
    def done(self) -> bool:
        return self.state == ThreadState.DONE

    # ------------------------------------------------------------------
    # Value resolution
    # ------------------------------------------------------------------
    def value_of(self, v: Value) -> Any:
        if isinstance(v, ConstantInt):
            return v.value
        if isinstance(v, ConstantFP):
            return v.value
        if isinstance(v, ConstantPointerNull):
            return 0
        if isinstance(v, UndefValue):
            return 0
        if isinstance(v, Function):
            return self.interp.memory.address_of_function(v)
        if isinstance(v, GlobalVariable):
            return self.interp.global_address(v)
        if isinstance(v, (Instruction, Argument)):
            try:
                return self.frame.registers[id(v)]
            except KeyError:
                raise InterpreterError(
                    f"use of value %{v.name} before definition in "
                    f"@{self.frame.fn.name}"
                )
        raise InterpreterError(f"cannot evaluate {v!r}")

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction (or finish a pending native call)."""
        if self.state != ThreadState.RUNNABLE:
            return
        frame = self.frame
        if frame.index >= len(frame.block.instructions):
            raise InterpreterError(
                f"fell off the end of block {frame.block.name}"
            )
        inst = frame.block.instructions[frame.index]
        if FAULTS.armed:
            FAULTS.hit("interp-step")
        self.instructions_retired += 1
        profile = self.interp.profile
        if profile.detailed:
            profile.count_block(frame.fn.name, frame.block.name)
        self._execute(inst)

    def run_to_completion(self, fuel: int | None = None) -> Any:
        """Step until done (used for single-threaded execution and inside
        native calls).  Returns the top-level return value."""
        budget = fuel if fuel is not None else self.interp.default_fuel
        while not self.done:
            if self.state == ThreadState.BARRIER:
                # Single-threaded contexts pass barriers trivially.
                self.state = ThreadState.RUNNABLE
                self.waiting_at = None
            self.step()
            budget -= 1
            if budget <= 0:
                raise ExecutionTimeout(
                    "execution fuel exhausted (infinite loop?)",
                    scheduler_snapshot(self.interp),
                )
            if (budget & 0xFFF) == 0:
                self.interp.check_deadline()
        return self.return_value

    # ------------------------------------------------------------------
    def _jump(self, target: BasicBlock) -> None:
        frame = self.frame
        frame.prev_block = frame.block
        frame.block = target
        frame.index = 0
        # Resolve all phis of the target atomically (parallel copy).
        phis = []
        for inst in target.instructions:
            if isinstance(inst, PhiInst):
                phis.append(inst)
            else:
                break
        if phis:
            values = []
            for phi in phis:
                incoming = phi.incoming_for(frame.prev_block)
                if incoming is None:
                    raise InterpreterError(
                        f"phi %{phi.name} has no incoming for "
                        f"{frame.prev_block.name}"
                    )
                values.append(self.value_of(incoming))
            for phi, value in zip(phis, values):
                frame.registers[id(phi)] = value
            frame.index = len(phis)

    def _set(self, inst: Instruction, value: Any) -> None:
        self.frame.registers[id(inst)] = value
        self.frame.index += 1

    def _return(self, value: Any) -> None:
        frame = self.stack.pop()
        self.stack_ptr = frame.stack_mark
        if not self.stack:
            self.return_value = value
            self.state = ThreadState.DONE
            return
        caller = self.frame
        call_inst = caller.block.instructions[caller.index]
        assert isinstance(call_inst, CallInst)
        if not call_inst.type.is_void:
            caller.registers[id(call_inst)] = value
        caller.index += 1

    # ------------------------------------------------------------------
    # Instruction semantics
    # ------------------------------------------------------------------
    def _execute(self, inst: Instruction) -> None:
        mem = self.interp.memory
        if isinstance(inst, BinaryInst):
            self._set(inst, self._binop(inst))
        elif isinstance(inst, ICmpInst):
            self._set(inst, self._icmp(inst))
        elif isinstance(inst, FCmpInst):
            self._set(inst, self._fcmp(inst))
        elif isinstance(inst, CastInst):
            self._set(inst, self._cast(inst))
        elif isinstance(inst, AllocaInst):
            count = (
                self.value_of(inst.array_size)
                if inst.array_size is not None
                else 1
            )
            size = inst.allocated_type.size_bytes() * max(1, count)
            addr = self.stack_alloc(size)
            mem.zero(addr, size)
            self._set(inst, addr)
        elif isinstance(inst, LoadInst):
            addr = self.value_of(inst.pointer)
            self._set(inst, mem.load(inst.type, addr))
        elif isinstance(inst, StoreInst):
            addr = self.value_of(inst.pointer)
            mem.store(
                inst.value.type, addr, self.value_of(inst.value)
            )
            self.frame.index += 1
        elif isinstance(inst, GEPInst):
            self._set(inst, self._gep(inst))
        elif isinstance(inst, BranchInst):
            self._jump(inst.target)
        elif isinstance(inst, CondBranchInst):
            cond = self.value_of(inst.condition)
            self._jump(
                inst.true_block if cond else inst.false_block
            )
        elif isinstance(inst, SwitchInst):
            value = self.value_of(inst.condition)
            ty = inst.condition.type
            signed = (
                ty.to_signed(value) if isinstance(ty, IntType) else value
            )
            for case_value, target in inst.cases:
                if case_value == signed:
                    self._jump(target)
                    return
            self._jump(inst.default)
        elif isinstance(inst, ReturnInst):
            self._return(
                self.value_of(inst.value)
                if inst.value is not None
                else None
            )
        elif isinstance(inst, UnreachableInst):
            raise Trap("reached 'unreachable' instruction")
        elif isinstance(inst, SelectInst):
            cond = self.value_of(inst.condition)
            self._set(
                inst,
                self.value_of(
                    inst.true_value if cond else inst.false_value
                ),
            )
        elif isinstance(inst, PhiInst):
            raise InterpreterError(
                "phi encountered outside block entry"
            )
        elif isinstance(inst, CallInst):
            self._call(inst)
        else:
            raise InterpreterError(
                f"unhandled instruction {type(inst).__name__}"
            )

    # ------------------------------------------------------------------
    def _binop(self, inst: BinaryInst) -> Any:
        op = inst.op
        lhs = self.value_of(inst.lhs)
        rhs = self.value_of(inst.rhs)
        if op.is_float_op:
            if op == BinOp.FADD:
                return lhs + rhs
            if op == BinOp.FSUB:
                return lhs - rhs
            if op == BinOp.FMUL:
                return lhs * rhs
            if op == BinOp.FDIV:
                if rhs == 0.0:
                    return float("inf") if lhs > 0 else float("-inf") if lhs < 0 else float("nan")
                return lhs / rhs
            if op == BinOp.FREM:
                import math

                return math.fmod(lhs, rhs) if rhs != 0 else float("nan")
        ty = inst.type
        assert isinstance(ty, IntType)
        sa, sb = ty.to_signed(lhs), ty.to_signed(rhs)
        if op == BinOp.ADD:
            return ty.wrap(lhs + rhs)
        if op == BinOp.SUB:
            return ty.wrap(lhs - rhs)
        if op == BinOp.MUL:
            return ty.wrap(lhs * rhs)
        if op == BinOp.UDIV:
            if rhs == 0:
                raise Trap("division by zero")
            return lhs // rhs
        if op == BinOp.SDIV:
            if rhs == 0:
                raise Trap("division by zero")
            q = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                q = -q
            return ty.wrap(q)
        if op == BinOp.UREM:
            if rhs == 0:
                raise Trap("division by zero")
            return lhs % rhs
        if op == BinOp.SREM:
            if rhs == 0:
                raise Trap("division by zero")
            q = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                q = -q
            return ty.wrap(sa - q * sb)
        if op == BinOp.AND:
            return lhs & rhs
        if op == BinOp.OR:
            return lhs | rhs
        if op == BinOp.XOR:
            return lhs ^ rhs
        if op == BinOp.SHL:
            return ty.wrap(lhs << (rhs % ty.bits))
        if op == BinOp.LSHR:
            return lhs >> (rhs % ty.bits)
        if op == BinOp.ASHR:
            return ty.wrap(sa >> (rhs % ty.bits))
        raise InterpreterError(f"unhandled binop {op}")

    def _icmp(self, inst: ICmpInst) -> int:
        lhs = self.value_of(inst.lhs)
        rhs = self.value_of(inst.rhs)
        pred = inst.pred
        ty = inst.lhs.type
        if pred.is_signed and isinstance(ty, IntType):
            lhs, rhs = ty.to_signed(lhs), ty.to_signed(rhs)
        result = {
            ICmpPred.EQ: lhs == rhs,
            ICmpPred.NE: lhs != rhs,
            ICmpPred.SLT: lhs < rhs,
            ICmpPred.SLE: lhs <= rhs,
            ICmpPred.SGT: lhs > rhs,
            ICmpPred.SGE: lhs >= rhs,
            ICmpPred.ULT: lhs < rhs,
            ICmpPred.ULE: lhs <= rhs,
            ICmpPred.UGT: lhs > rhs,
            ICmpPred.UGE: lhs >= rhs,
        }[pred]
        return int(result)

    def _fcmp(self, inst: FCmpInst) -> int:
        lhs = self.value_of(inst.lhs)
        rhs = self.value_of(inst.rhs)
        result = {
            FCmpPred.OEQ: lhs == rhs,
            FCmpPred.ONE: lhs != rhs,
            FCmpPred.OLT: lhs < rhs,
            FCmpPred.OLE: lhs <= rhs,
            FCmpPred.OGT: lhs > rhs,
            FCmpPred.OGE: lhs >= rhs,
        }[inst.pred]
        return int(result)

    def _cast(self, inst: CastInst) -> Any:
        value = self.value_of(inst.value)
        op = inst.op
        src_ty = inst.value.type
        dst_ty = inst.type
        if op == CastOp.TRUNC:
            assert isinstance(dst_ty, IntType)
            return dst_ty.wrap(value)
        if op == CastOp.ZEXT:
            return value
        if op == CastOp.SEXT:
            assert isinstance(src_ty, IntType) and isinstance(
                dst_ty, IntType
            )
            return dst_ty.wrap(src_ty.to_signed(value))
        if op == CastOp.FPTOSI:
            assert isinstance(dst_ty, IntType)
            return dst_ty.wrap(int(value))
        if op == CastOp.FPTOUI:
            assert isinstance(dst_ty, IntType)
            return dst_ty.wrap(int(value))
        if op == CastOp.SITOFP:
            assert isinstance(src_ty, IntType)
            result = float(src_ty.to_signed(value))
            if isinstance(dst_ty, FloatType) and dst_ty.bits == 32:
                import struct as _s

                result = _s.unpack("f", _s.pack("f", result))[0]
            return result
        if op == CastOp.UITOFP:
            result = float(value)
            if isinstance(dst_ty, FloatType) and dst_ty.bits == 32:
                import struct as _s

                result = _s.unpack("f", _s.pack("f", result))[0]
            return result
        if op in (CastOp.FPEXT, CastOp.FPTRUNC):
            if isinstance(dst_ty, FloatType) and dst_ty.bits == 32:
                import struct as _s

                return _s.unpack("f", _s.pack("f", value))[0]
            return float(value)
        if op in (CastOp.PTRTOINT, CastOp.INTTOPTR, CastOp.BITCAST):
            if isinstance(dst_ty, IntType):
                return dst_ty.wrap(int(value))
            return value
        raise InterpreterError(f"unhandled cast {op}")

    def _gep(self, inst: GEPInst) -> int:
        addr = self.value_of(inst.pointer)
        ty: IRType = inst.element_type
        indices = [self.value_of(i) for i in inst.indices]
        # First index scales by the element type as a whole.
        first = indices[0]
        idx_ty = inst.indices[0].type
        if isinstance(idx_ty, IntType):
            first = idx_ty.to_signed(first)
        addr += first * ty.size_bytes()
        for raw, idx_val in zip(inst.indices[1:], indices[1:]):
            if isinstance(ty, StructType):
                addr += ty.offset_of(idx_val)
                ty = ty.elements[idx_val]
            elif isinstance(ty, ArrayType):
                signed = idx_val
                if isinstance(raw.type, IntType):
                    signed = raw.type.to_signed(idx_val)
                addr += signed * ty.element.size_bytes()
                ty = ty.element
            else:
                raise InterpreterError(
                    f"gep into non-aggregate type {ty}"
                )
        return addr

    # ------------------------------------------------------------------
    def _call(self, inst: CallInst) -> None:
        callee = inst.callee
        fn: Function | None = None
        if isinstance(callee, Function):
            fn = callee
        else:
            addr = self.value_of(callee)
            fn = self.interp.memory.function_at(addr)
            if fn is None:
                raise Trap(
                    f"indirect call to invalid address {addr:#x}"
                )
        args = [self.value_of(a) for a in inst.args]
        native = self.interp.native_for(fn)
        if native is not None:
            # Natives see C-signed integer values (the interpreter's
            # register representation is the unsigned bit pattern).
            native_args = [
                a.type.to_signed(value)
                if isinstance(a.type, IntType) and a.type.bits > 1
                else value
                for a, value in zip(inst.args, args)
            ]
            result = native(self.interp, self, native_args)
            if result is RETRY:
                return  # spin: re-execute this call on the next step
            if not inst.type.is_void:
                self.frame.registers[id(inst)] = result
            self.frame.index += 1
            return
        self._push_frame(fn, args)


class Interpreter:
    """Owns a module instance: memory, globals, natives, entry points."""

    #: engine selector this class answers to (``-fexec=``); the closure
    #: engine overrides it
    engine_name = "interp"

    def __init__(
        self,
        module: Module,
        memory_size: int = 1 << 22,
        default_fuel: int = 50_000_000,
        profile_detail: bool = False,
        memory_limit: int | None = None,
        max_call_depth: int = 256,
    ) -> None:
        self.module = module
        self.memory = Memory(memory_size, limit=memory_limit)
        self.default_fuel = default_fuel
        #: guest recursion guardrail (frames per logical thread)
        self.max_call_depth = max_call_depth
        #: wall-clock guardrail; armed by run(timeout_s=...)
        self.deadline: float | None = None
        self.timeout_s: float | None = None
        #: dynamic execution profile; every ExecutionContext registers
        #: itself here, so the legacy ``instruction_count`` below is a
        #: view over the same data
        self.profile = ExecutionProfile(detailed=profile_detail)
        self.stdout: list[str] = []
        self._global_addresses: dict[int, int] = {}
        self._natives: dict[str, Callable] = {}
        self._install_default_natives()
        self._initialize_globals()
        #: simulated OpenMP runtime state (created lazily)
        from repro.runtime.kmp import OpenMPRuntime

        self.omp = OpenMPRuntime(self)
        self.omp.install(self)

    # ------------------------------------------------------------------
    def _initialize_globals(self) -> None:
        for gv in self.module.globals.values():
            size = gv.value_type.size_bytes()
            if gv.initializer_bytes is not None:
                size = max(size, len(gv.initializer_bytes))
            addr = self.memory.allocate(size)
            self.memory.zero(addr, size)
            if gv.initializer_bytes is not None:
                self.memory.write_bytes(addr, gv.initializer_bytes)
            elif gv.initializer is not None:
                if isinstance(gv.initializer, (ConstantInt, ConstantFP)):
                    self.memory.store(
                        gv.initializer.type,
                        addr,
                        gv.initializer.value,
                    )
            self._global_addresses[id(gv)] = addr

    def global_address(self, gv: GlobalVariable) -> int:
        addr = self._global_addresses.get(id(gv))
        if addr is None:
            raise InterpreterError(f"unknown global @{gv.name}")
        return addr

    # ------------------------------------------------------------------
    # Natives
    # ------------------------------------------------------------------
    def register_native(
        self, name: str, impl: Callable
    ) -> None:
        self._natives[name] = impl

    def native_for(self, fn: Function) -> Callable | None:
        if fn.native_impl is not None:
            return fn.native_impl
        if fn.is_declaration:
            native = self._natives.get(fn.name)
            if native is None:
                raise InterpreterError(
                    f"call to undefined external function @{fn.name}"
                )
            return native
        return None

    def _install_default_natives(self) -> None:
        from repro.interp.native import install_libc

        install_libc(self)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def spawn_context(
        self, fn: Function, args: list[Any], thread_id: int = 0
    ) -> ExecutionContext:
        """Create one logical thread over *fn*.  The single point where
        contexts are born (entry points and the OpenMP runtime's
        fork both route through it) so execution engines can substitute
        their own context type."""
        return ExecutionContext(self, fn, args, thread_id=thread_id)

    def create_context(
        self, fn_name: str, args: list[Any] | None = None
    ) -> ExecutionContext:
        fn = self.module.get_function(fn_name)
        if fn is None:
            raise InterpreterError(f"no function @{fn_name}")
        return self.spawn_context(fn, args or [])

    @property
    def instruction_count(self) -> int:
        """Total dynamic instructions across all logical threads
        (backward-compatible view over the execution profile)."""
        return self.profile.total_instructions

    def check_deadline(self) -> None:
        """Raise :class:`ExecutionTimeout` past the wall-clock deadline.

        Called from the stepping loops on a coarse instruction mask so
        the common case costs one attribute test per step batch."""
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise ExecutionTimeout(
                f"wall-clock timeout of {self.timeout_s:g}s exceeded",
                scheduler_snapshot(self),
            )

    def run(
        self,
        fn_name: str = "main",
        args: list[Any] | None = None,
        fuel: int | None = None,
        timeout_s: float | None = None,
    ) -> Any:
        if timeout_s is not None:
            self.timeout_s = timeout_s
            self.deadline = time.monotonic() + timeout_s
        with time_trace_scope("Execute", fn_name):
            ctx = self.create_context(fn_name, args)
            return ctx.run_to_completion(fuel)

    def output(self) -> str:
        return "".join(self.stdout)
