"""Flat byte-addressable memory for the interpreter.

Layout: one bytearray; address 0 is reserved (null).  Globals are
allocated at startup, stack frames bump-allocate and release on return,
and a tiny heap serves ``malloc``.  Function "addresses" live in a
reserved high range so function pointers round-trip through memory.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    IRType,
    PointerType,
    StructType,
)

if TYPE_CHECKING:
    from repro.ir.module import Function


class MemoryError_(Exception):
    """Out-of-range access or misuse of the simulated memory."""


class MemoryLimitExceeded(MemoryError_):
    """Guest exceeded the configured memory ceiling (``--max-memory``)."""


#: Function pseudo-addresses start here (way above any data address).
FUNCTION_ADDRESS_BASE = 1 << 48


class Memory:
    def __init__(
        self, size: int = 1 << 22, limit: int | None = None
    ) -> None:
        self.data = bytearray(size)
        #: hard ceiling on total guest memory (None = unlimited); the
        #: backing bytearray otherwise grows geometrically on demand
        self.limit = limit
        #: bump pointer; 16 keeps null + some red zone free
        self._brk = 16
        self._function_by_address: dict[int, "Function"] = {}
        self._address_by_function: dict[int, int] = {}
        self._next_function_addr = FUNCTION_ADDRESS_BASE

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, size: int, align: int = 8) -> int:
        addr = (self._brk + align - 1) // align * align
        new_brk = addr + max(1, size)
        if self.limit is not None and new_brk > self.limit:
            raise MemoryLimitExceeded(
                f"guest memory ceiling exceeded: allocating {size} bytes "
                f"needs {new_brk} bytes total (limit {self.limit})"
            )
        if new_brk > len(self.data):
            # Grow geometrically; the interpreter is bounded by tests.
            self.data.extend(
                bytearray(max(len(self.data), new_brk - len(self.data)))
            )
        self._brk = new_brk
        return addr

    def watermark(self) -> int:
        return self._brk

    def release_to(self, mark: int) -> None:
        """Pop stack allocations (frame unwind)."""
        self._brk = mark

    # ------------------------------------------------------------------
    # Function pseudo-addresses
    # ------------------------------------------------------------------
    def address_of_function(self, fn: "Function") -> int:
        addr = self._address_by_function.get(id(fn))
        if addr is None:
            addr = self._next_function_addr
            self._next_function_addr += 16
            self._address_by_function[id(fn)] = addr
            self._function_by_address[addr] = fn
        return addr

    def function_at(self, addr: int) -> "Function | None":
        return self._function_by_address.get(addr)

    # ------------------------------------------------------------------
    # Raw access
    # ------------------------------------------------------------------
    def _check(self, addr: int, size: int) -> None:
        if addr <= 0 or addr + size > len(self.data):
            raise MemoryError_(
                f"out-of-range access: {size} bytes at {addr:#x}"
            )

    def read_bytes(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        return bytes(self.data[addr : addr + size])

    def write_bytes(self, addr: int, payload: bytes) -> None:
        self._check(addr, len(payload))
        self.data[addr : addr + len(payload)] = payload

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> str:
        out = bytearray()
        for i in range(limit):
            b = self.data[addr + i]
            if b == 0:
                break
            out.append(b)
        return out.decode("utf-8", errors="replace")

    # ------------------------------------------------------------------
    # Typed access
    # ------------------------------------------------------------------
    _INT_FORMATS = {1: "<B", 8: "<B", 16: "<H", 32: "<I", 64: "<Q"}

    def load(self, ty: IRType, addr: int):
        if isinstance(ty, IntType):
            size = ty.size_bytes()
            fmt = self._INT_FORMATS[max(8, ty.bits) if ty.bits in (1,) else ty.bits]
            raw = self.read_bytes(addr, size)
            value = struct.unpack(fmt, raw)[0]
            return ty.wrap(value)
        if isinstance(ty, FloatType):
            raw = self.read_bytes(addr, ty.size_bytes())
            return struct.unpack("<f" if ty.bits == 32 else "<d", raw)[0]
        if isinstance(ty, PointerType):
            raw = self.read_bytes(addr, 8)
            return struct.unpack("<Q", raw)[0]
        raise MemoryError_(f"cannot load aggregate type {ty}")

    def store(self, ty: IRType, addr: int, value) -> None:
        if isinstance(ty, IntType):
            size = ty.size_bytes()
            fmt = self._INT_FORMATS[max(8, ty.bits) if ty.bits in (1,) else ty.bits]
            self.write_bytes(
                addr, struct.pack(fmt, ty.wrap(int(value)))
            )
            return
        if isinstance(ty, FloatType):
            fmt = "<f" if ty.bits == 32 else "<d"
            self.write_bytes(addr, struct.pack(fmt, float(value)))
            return
        if isinstance(ty, PointerType):
            self.write_bytes(addr, struct.pack("<Q", int(value) & ((1 << 64) - 1)))
            return
        raise MemoryError_(f"cannot store aggregate type {ty}")

    # ------------------------------------------------------------------
    def zero(self, addr: int, size: int) -> None:
        self._check(addr, size)
        self.data[addr : addr + size] = bytes(size)
