"""libc subset natively implemented for the interpreter.

Covers what the examples and tests need: printf family, abort/exit,
malloc/free, memset/memcpy, and a few math helpers.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

from repro.interp.memory import Memory

if TYPE_CHECKING:
    from repro.interp.interpreter import ExecutionContext, Interpreter


def _format_printf(
    interp: "Interpreter", fmt: str, args: list[Any]
) -> str:
    """A small printf engine: %d %i %u %ld %lu %lld %zu %f %g %e %c %s %p
    %x %% with width/precision digits passed through to Python."""
    out: list[str] = []
    i = 0
    arg_index = 0

    def next_arg() -> Any:
        nonlocal arg_index
        if arg_index < len(args):
            value = args[arg_index]
            arg_index += 1
            return value
        return 0

    n = len(fmt)
    while i < n:
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        j = i + 1
        spec = ""
        while j < n and fmt[j] in "-+ #0123456789.*":
            spec += fmt[j]
            j += 1
        length = ""
        while j < n and fmt[j] in "hlzjt":
            length += fmt[j]
            j += 1
        if j >= n:
            out.append("%")
            break
        conv = fmt[j]
        i = j + 1
        if conv == "%":
            out.append("%")
            continue
        if "*" in spec:
            width = next_arg()
            spec = spec.replace("*", str(width), 1)
        value = next_arg()
        if conv in "di":
            signed = _to_signed64(value)
            out.append(f"%{spec}d" % signed)
        elif conv == "u":
            out.append(f"%{spec}d" % (value & ((1 << 64) - 1)))
        elif conv in "xX":
            out.append(f"%{spec}{conv}" % (value & ((1 << 64) - 1)))
        elif conv in "fFeEgG":
            out.append(f"%{spec}{conv}" % float(value))
        elif conv == "c":
            out.append(chr(int(value) & 0xFF))
        elif conv == "s":
            out.append(interp.memory.read_cstring(int(value)))
        elif conv == "p":
            out.append(hex(int(value)))
        else:
            out.append(f"%{conv}")
    return "".join(out)


def _to_signed64(value: Any) -> int:
    value = int(value) & ((1 << 64) - 1)
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def install_libc(interp: "Interpreter") -> None:
    mem = interp.memory

    def printf(interp, ctx, args):
        fmt = mem.read_cstring(int(args[0]))
        text = _format_printf(interp, fmt, args[1:])
        interp.stdout.append(text)
        return len(text)

    def puts(interp, ctx, args):
        text = mem.read_cstring(int(args[0]))
        interp.stdout.append(text + "\n")
        return len(text) + 1

    def putchar(interp, ctx, args):
        interp.stdout.append(chr(int(args[0]) & 0xFF))
        return args[0]

    def abort(interp, ctx, args):
        from repro.interp.interpreter import Trap

        raise Trap("abort() called")

    def exit_(interp, ctx, args):
        from repro.interp.interpreter import Trap

        raise Trap(f"exit({_to_signed64(args[0])}) called")

    def malloc(interp, ctx, args):
        return mem.allocate(max(1, int(args[0])))

    def free(interp, ctx, args):
        return None  # bump allocator: no-op

    def memset(interp, ctx, args):
        dst, value, count = int(args[0]), int(args[1]) & 0xFF, int(args[2])
        mem.write_bytes(dst, bytes([value]) * count)
        return dst

    def memcpy(interp, ctx, args):
        dst, src, count = int(args[0]), int(args[1]), int(args[2])
        mem.write_bytes(dst, mem.read_bytes(src, count))
        return dst

    def sqrt(interp, ctx, args):
        return math.sqrt(float(args[0]))

    def fabs(interp, ctx, args):
        return abs(float(args[0]))

    def assert_fail(interp, ctx, args):
        from repro.interp.interpreter import Trap

        raise Trap("assertion failed")

    for name, impl in {
        "printf": printf,
        "puts": puts,
        "putchar": putchar,
        "abort": abort,
        "exit": exit_,
        "malloc": malloc,
        "free": free,
        "memset": memset,
        "memcpy": memcpy,
        "sqrt": sqrt,
        "fabs": fabs,
        "__assert_fail": assert_fail,
    }.items():
        interp.register_native(name, impl)
