"""The Sema facade: clang-style ``act_on_*`` parser actions.

The Parser decides *what* a syntactic element is and pushes it here; Sema
types it, inserts implicit nodes (casts, decay, captures) and produces the
immutable AST (paper §1.3).  OpenMP-specific analysis lives in
:class:`repro.sema.omp_sema.OpenMPSema`, reachable as ``sema.openmp``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.astlib import exprs as e
from repro.astlib import stmts as s
from repro.astlib.context import ASTContext
from repro.astlib.decls import (
    Decl,
    EnumConstantDecl,
    FieldDecl,
    FunctionDecl,
    NamedDecl,
    ParmVarDecl,
    RecordDecl,
    StorageClass,
    TranslationUnitDecl,
    TypedefDecl,
    VarDecl,
)
from repro.astlib.types import (
    ArrayType,
    BuiltinKind,
    ConstantArrayType,
    FunctionType,
    PointerType,
    QualType,
    RecordType,
    ReferenceType,
    desugar,
)
from repro.diagnostics import DiagnosticsEngine
from repro.instrument import get_statistic
from repro.sema.expr_eval import IntExprEvaluator, NotConstant
from repro.sema.scope import Scope, ScopeKind
from repro.sourcemgr.location import SourceLocation

_ERRORS_RECOVERED = get_statistic(
    "crash-recovery",
    "recovered-errors",
    "Semantic errors recovered via RecoveryExpr placeholders",
)


class Sema:
    def __init__(
        self, ctx: ASTContext, diags: DiagnosticsEngine
    ) -> None:
        self.ctx = ctx
        self.diags = diags
        self.tu_scope = Scope(ScopeKind.TRANSLATION_UNIT)
        self.scope = self.tu_scope
        self.current_function: FunctionDecl | None = None
        self._loop_depth = 0
        self._switch_depth = 0
        self.evaluator = IntExprEvaluator(ctx)
        # Deferred import to avoid a cycle (omp_sema imports Sema types).
        from repro.sema.omp_sema import OpenMPSema

        self.openmp = OpenMPSema(self)
        self._declare_standard_typedefs()
        self._declare_builtin_functions()

    # ==================================================================
    # Scopes
    # ==================================================================
    def push_scope(self, kind: ScopeKind) -> Scope:
        self.scope = Scope(kind, self.scope)
        return self.scope

    def pop_scope(self) -> None:
        assert self.scope.parent is not None, "popping TU scope"
        self.scope = self.scope.parent

    class _ScopeGuard:
        def __init__(self, sema: "Sema", kind: ScopeKind):
            self.sema = sema
            self.kind = kind

        def __enter__(self) -> Scope:
            return self.sema.push_scope(self.kind)

        def __exit__(self, *exc) -> None:
            self.sema.pop_scope()

    def scoped(self, kind: ScopeKind) -> "Sema._ScopeGuard":
        return Sema._ScopeGuard(self, kind)

    def _declare_standard_typedefs(self) -> None:
        """size_t / ptrdiff_t / fixed-width typedefs, always available
        (stands in for <stddef.h>/<stdint.h>)."""
        ctx = self.ctx
        table = {
            "size_t": ctx.size_type,
            "ptrdiff_t": ctx.ptrdiff_type,
            "intptr_t": ctx.long_type,
            "uintptr_t": ctx.ulong_type,
            "int8_t": ctx.get_builtin(BuiltinKind.SCHAR),
            "uint8_t": ctx.get_builtin(BuiltinKind.UCHAR),
            "int16_t": ctx.get_builtin(BuiltinKind.SHORT),
            "uint16_t": ctx.get_builtin(BuiltinKind.USHORT),
            "int32_t": ctx.int_type,
            "uint32_t": ctx.uint_type,
            "int64_t": ctx.long_type,
            "uint64_t": ctx.ulong_type,
        }
        for name, underlying in table.items():
            self.tu_scope.declare(TypedefDecl(name, underlying))

    def _declare_builtin_functions(self) -> None:
        """Predeclare the libc subset and the ``omp_*`` user API the
        interpreter implements natively (stands in for <stdio.h>,
        <stdlib.h>, <math.h>, <omp.h>)."""
        ctx = self.ctx
        char_ptr = ctx.get_pointer(ctx.char_type.with_const())
        void_ptr = ctx.get_pointer(ctx.void_type)
        builtins: dict[str, tuple] = {
            "printf": (ctx.int_type, [char_ptr], True),
            "puts": (ctx.int_type, [char_ptr], False),
            "putchar": (ctx.int_type, [ctx.int_type], False),
            "abort": (ctx.void_type, [], False),
            "exit": (ctx.void_type, [ctx.int_type], False),
            "malloc": (void_ptr, [ctx.size_type], False),
            "free": (ctx.void_type, [void_ptr], False),
            "memset": (
                void_ptr,
                [void_ptr, ctx.int_type, ctx.size_type],
                False,
            ),
            "memcpy": (
                void_ptr,
                [void_ptr, void_ptr, ctx.size_type],
                False,
            ),
            "sqrt": (ctx.double_type, [ctx.double_type], False),
            "fabs": (ctx.double_type, [ctx.double_type], False),
            "omp_get_thread_num": (ctx.int_type, [], False),
            "omp_get_num_threads": (ctx.int_type, [], False),
            "omp_get_max_threads": (ctx.int_type, [], False),
            "omp_set_num_threads": (
                ctx.void_type,
                [ctx.int_type],
                False,
            ),
            "omp_in_parallel": (ctx.int_type, [], False),
            "omp_get_wtime": (ctx.double_type, [], False),
        }
        for name, (ret, params, variadic) in builtins.items():
            fn_type = ctx.get_function(ret, list(params), variadic)
            param_decls = [
                ParmVarDecl(f".p{i}", p) for i, p in enumerate(params)
            ]
            decl = FunctionDecl(name, fn_type, param_decls)
            decl.is_implicit = True
            self.tu_scope.declare(decl)

    # ==================================================================
    # Declarations
    # ==================================================================
    def act_on_variable_declaration(
        self,
        name: str,
        type: QualType,
        init: Optional[e.Expr],
        storage_class: StorageClass = StorageClass.NONE,
        loc: SourceLocation | None = None,
    ) -> VarDecl:
        canonical = desugar(type)
        if canonical.is_void():
            self.diags.error(f"variable '{name}' has incomplete type 'void'", loc)
        if init is not None:
            if isinstance(canonical.type, ReferenceType):
                if not init.is_lvalue:
                    self.diags.error(
                        f"non-lvalue initializer for reference '{name}'",
                        loc,
                    )
            elif isinstance(init, e.InitListExpr):
                init = self._convert_init_list(init, canonical, loc)
            else:
                init = self.implicit_convert(init, type, "initialization")
        decl = VarDecl(name, type, init, storage_class, loc)
        decl.is_global = self.scope.kind == ScopeKind.TRANSLATION_UNIT
        previous = self.scope.declare(decl)
        if previous is not None and not isinstance(previous, TypedefDecl):
            self.diags.error(f"redefinition of '{name}'", loc).add_note(
                "previous definition is here", previous.location
            )
        if decl.is_global:
            self.ctx.translation_unit.add(decl)
        return decl

    def _convert_init_list(
        self, init: e.InitListExpr, target: QualType, loc
    ) -> e.InitListExpr:
        """Convert each initializer element to the aggregate's element
        type (C brace initialization semantics)."""
        canonical = desugar(target)
        if isinstance(canonical.type, ConstantArrayType):
            elem_ty = canonical.type.element
            if len(init.inits) > canonical.type.size:
                self.diags.error(
                    "excess elements in array initializer", loc
                )
            converted = [
                self._convert_init_list(item, desugar(elem_ty), loc)
                if isinstance(item, e.InitListExpr)
                else self.implicit_convert(
                    item, elem_ty, "initialization"
                )
                for item in init.inits
            ]
            return e.InitListExpr(converted, target, init.location)
        if canonical.is_scalar() and init.inits:
            converted_scalar = self.implicit_convert(
                init.inits[0], target, "initialization"
            )
            return e.InitListExpr(
                [converted_scalar], target, init.location
            )
        return init

    def act_on_typedef(
        self,
        name: str,
        underlying: QualType,
        loc: SourceLocation | None = None,
    ) -> TypedefDecl:
        decl = TypedefDecl(name, underlying, loc)
        self.scope.declare(decl)
        if self.scope.kind == ScopeKind.TRANSLATION_UNIT:
            self.ctx.translation_unit.add(decl)
        return decl

    def act_on_record_decl(
        self,
        name: str,
        is_union: bool,
        loc: SourceLocation | None = None,
    ) -> RecordDecl:
        existing = self.scope.lookup_tag(name) if name else None
        if isinstance(existing, RecordDecl):
            return existing
        decl = RecordDecl(name, is_union, loc)
        if name:
            self.scope.declare_tag(decl)
        return decl

    def act_on_field(
        self,
        record: RecordDecl,
        name: str,
        type: QualType,
        loc: SourceLocation | None = None,
    ) -> FieldDecl:
        if record.field_named(name) is not None:
            self.diags.error(
                f"duplicate member '{name}'", loc
            )
        field = FieldDecl(name, type, loc)
        record.add_field(field)
        return field

    def act_on_function_declaration(
        self,
        name: str,
        fn_type: QualType,
        params: list[ParmVarDecl],
        storage_class: StorageClass = StorageClass.NONE,
        is_inline: bool = False,
        loc: SourceLocation | None = None,
    ) -> FunctionDecl:
        existing = self.tu_scope.lookup_local(name)
        if isinstance(existing, FunctionDecl):
            if not self.ctx.is_same_type(existing.type, fn_type):
                self.diags.error(
                    f"conflicting types for '{name}'", loc
                ).add_note("previous declaration is here", existing.location)
            return existing
        decl = FunctionDecl(
            name, fn_type, params, None, storage_class, is_inline, loc
        )
        self.tu_scope.declare(decl)
        self.ctx.translation_unit.add(decl)
        return decl

    def act_on_start_of_function_def(self, fn: FunctionDecl) -> Scope:
        self.current_function = fn
        scope = self.push_scope(ScopeKind.FUNCTION)
        for param in fn.params:
            scope.declare(param)
        return scope

    def act_on_finish_function_body(
        self, fn: FunctionDecl, body: s.Stmt
    ) -> None:
        if fn.body is not None:
            self.diags.error(f"redefinition of '{fn.name}'", fn.location)
        fn.body = body
        self.pop_scope()
        self.current_function = None

    # ==================================================================
    # Conversions
    # ==================================================================
    def default_function_array_conversion(self, expr: e.Expr) -> e.Expr:
        """Array-to-pointer and function-to-pointer decay."""
        canonical = desugar(expr.type)
        if isinstance(canonical.type, ArrayType):
            ptr = self.ctx.get_pointer(canonical.type.element)
            return e.ImplicitCastExpr(
                e.CastKind.ARRAY_TO_POINTER_DECAY, expr, ptr
            )
        if isinstance(canonical.type, FunctionType):
            ptr = self.ctx.get_pointer(expr.type)
            return e.ImplicitCastExpr(
                e.CastKind.FUNCTION_TO_POINTER_DECAY, expr, ptr
            )
        return expr

    def default_lvalue_conversion(self, expr: e.Expr) -> e.Expr:
        """Full rvalue conversion: decay + lvalue-to-rvalue."""
        expr = self.default_function_array_conversion(expr)
        canonical = desugar(expr.type)
        if expr.is_lvalue and not isinstance(
            canonical.type, (ArrayType, FunctionType)
        ):
            return e.ImplicitCastExpr(
                e.CastKind.LVALUE_TO_RVALUE,
                expr,
                expr.type.unqualified(),
            )
        return expr

    def integer_promotion(self, expr: e.Expr) -> e.Expr:
        from repro.astlib.types import EnumType

        canonical = desugar(expr.type)
        if isinstance(canonical.type, EnumType):
            # Enumerations promote to int in expressions.
            return e.ImplicitCastExpr(
                e.CastKind.INTEGRAL_CAST, expr, self.ctx.int_type
            )
        if (
            canonical.is_integer()
            and canonical.type.integer_rank()
            < self.ctx.int_type.type.integer_rank()
        ):
            return e.ImplicitCastExpr(
                e.CastKind.INTEGRAL_CAST, expr, self.ctx.int_type
            )
        return expr

    def usual_arithmetic_conversions(
        self, lhs: e.Expr, rhs: e.Expr
    ) -> tuple[e.Expr, e.Expr, QualType]:
        """C11 6.3.1.8, restricted to our builtin set."""
        lty, rty = desugar(lhs.type), desugar(rhs.type)
        # Floating point dominates.
        if lty.is_floating() or rty.is_floating():
            target = (
                self.ctx.double_type
                if BuiltinKind.DOUBLE in (getattr(lty.type, "kind", None),
                                          getattr(rty.type, "kind", None))
                else self.ctx.float_type
            )
            return (
                self._convert_arith(lhs, target),
                self._convert_arith(rhs, target),
                target,
            )
        lhs, rhs = self.integer_promotion(lhs), self.integer_promotion(rhs)
        lty, rty = desugar(lhs.type), desugar(rhs.type)
        if lty.type is rty.type:
            return lhs, rhs, QualType(lty.type)
        lrank, rrank = lty.type.integer_rank(), rty.type.integer_rank()
        lsigned, rsigned = lty.is_signed_integer(), rty.is_signed_integer()
        if lsigned == rsigned:
            target = QualType(lty.type if lrank >= rrank else rty.type)
        else:
            signed_ty, signed_rank = (
                (lty, lrank) if lsigned else (rty, rrank)
            )
            unsigned_ty, unsigned_rank = (
                (rty, rrank) if lsigned else (lty, lrank)
            )
            if unsigned_rank >= signed_rank:
                target = QualType(unsigned_ty.type)
            elif self.ctx.type_width(QualType(signed_ty.type)) > self.ctx.type_width(
                QualType(unsigned_ty.type)
            ):
                target = QualType(signed_ty.type)
            else:
                target = self.ctx.int_type_of_width(
                    self.ctx.type_width(QualType(signed_ty.type)), False
                )
        return (
            self._convert_arith(lhs, target),
            self._convert_arith(rhs, target),
            target,
        )

    def _convert_arith(self, expr: e.Expr, target: QualType) -> e.Expr:
        src = desugar(expr.type)
        dst = desugar(target)
        if src.type is dst.type:
            return expr
        if src.is_integer() and dst.is_integer():
            kind = e.CastKind.INTEGRAL_CAST
        elif src.is_integer() and dst.is_floating():
            kind = e.CastKind.INTEGRAL_TO_FLOATING
        elif src.is_floating() and dst.is_integer():
            kind = e.CastKind.FLOATING_TO_INTEGRAL
        else:
            kind = e.CastKind.FLOATING_CAST
        return e.ImplicitCastExpr(kind, expr, target)

    def check_condition(self, expr: e.Expr, loc=None) -> e.Expr:
        """Validate and prepare a controlling expression.

        C never materializes a bool conversion for statement conditions —
        clang's AST dumps show the bare comparison (paper Listing 3) and
        CodeGen compares against zero; we follow that, only checking that
        the type is scalar.
        """
        expr = self.default_lvalue_conversion(expr)
        if not desugar(expr.type).is_scalar():
            self.diags.error(
                f"statement requires expression of scalar type "
                f"('{expr.type.spelling()}' invalid)",
                loc or expr.location,
            )
        return expr

    def convert_to_bool(self, expr: e.Expr, loc=None) -> e.Expr:
        """Convert a scalar to a boolean condition value."""
        expr = self.default_lvalue_conversion(expr)
        canonical = desugar(expr.type)
        if canonical.is_bool():
            return expr
        if canonical.is_integer():
            kind = e.CastKind.INTEGRAL_TO_BOOLEAN
        elif canonical.is_floating():
            kind = e.CastKind.FLOATING_TO_BOOLEAN
        elif canonical.is_pointer():
            kind = e.CastKind.POINTER_TO_BOOLEAN
        else:
            self.diags.error(
                f"value of type '{expr.type.spelling()}' is not "
                "contextually convertible to 'bool'",
                loc or expr.location,
            )
            return expr
        return e.ImplicitCastExpr(kind, expr, self.ctx.bool_type)

    def implicit_convert(
        self, expr: e.Expr, target: QualType, context: str
    ) -> e.Expr:
        """Assignment-style implicit conversion to *target*."""
        expr = self.default_lvalue_conversion(expr)
        src = desugar(expr.type)
        dst = desugar(target)
        if src.type is dst.type:
            return expr
        if dst.is_arithmetic() and src.is_arithmetic():
            if dst.is_bool():
                return self.convert_to_bool(expr)
            return self._convert_arith(expr, target)
        if dst.is_pointer() and src.is_pointer():
            spointee = desugar(dst.type.pointee)
            dpointee = desugar(src.type.pointee)
            if spointee.is_void() or dpointee.is_void():
                return e.ImplicitCastExpr(e.CastKind.BITCAST, expr, target)
            if spointee.type is dpointee.type:
                return e.ImplicitCastExpr(e.CastKind.NOOP, expr, target)
            self.diags.warning(
                f"incompatible pointer types in {context}: "
                f"'{expr.type.spelling()}' to '{target.spelling()}'",
                expr.location,
            )
            return e.ImplicitCastExpr(e.CastKind.BITCAST, expr, target)
        if dst.is_pointer() and src.is_integer():
            value = self.evaluator.try_evaluate(expr)
            if value == 0:
                return e.ImplicitCastExpr(
                    e.CastKind.NULL_TO_POINTER, expr, target
                )
            self.diags.warning(
                f"incompatible integer to pointer conversion in {context}",
                expr.location,
            )
            return e.ImplicitCastExpr(e.CastKind.BITCAST, expr, target)
        self.diags.error(
            f"cannot convert '{expr.type.spelling()}' to "
            f"'{target.spelling()}' in {context}",
            expr.location,
        )
        return expr

    # ==================================================================
    # Expressions
    # ==================================================================
    def act_on_integer_literal(
        self, spelling: str, loc: SourceLocation | None = None
    ) -> e.Expr:
        text = spelling
        is_unsigned = False
        long_count = 0
        while text and text[-1] in "uUlL":
            if text[-1] in "uU":
                is_unsigned = True
            else:
                long_count += 1
            text = text[:-1]
        base = 10
        if text.lower().startswith("0x"):
            base = 16
        elif text.lower().startswith("0b"):
            base = 2
        elif text.startswith("0") and len(text) > 1:
            base = 8
        try:
            value = int(text, base)
        except ValueError:
            self.diags.error(f"invalid integer literal '{spelling}'", loc)
            value = 0
        ctx = self.ctx
        # Candidate types per C11 6.4.4.1 (hex/oct also try unsigned).
        candidates: list[QualType] = []
        if is_unsigned:
            candidates = [ctx.uint_type, ctx.ulong_type, ctx.ulonglong_type]
        elif base == 10:
            candidates = [ctx.int_type, ctx.long_type, ctx.longlong_type]
        else:
            candidates = [
                ctx.int_type,
                ctx.uint_type,
                ctx.long_type,
                ctx.ulong_type,
                ctx.longlong_type,
                ctx.ulonglong_type,
            ]
        if long_count == 1:
            candidates = [
                c
                for c in candidates
                if desugar(c).type.integer_rank() >= 4
            ]
        elif long_count >= 2:
            candidates = [
                c
                for c in candidates
                if desugar(c).type.integer_rank() >= 5
            ]
        chosen = candidates[-1]
        for cand in candidates:
            width = ctx.type_width(cand)
            if desugar(cand).is_signed_integer():
                if value < (1 << (width - 1)):
                    chosen = cand
                    break
            else:
                if value < (1 << width):
                    chosen = cand
                    break
        return e.IntegerLiteral(value, chosen, loc)

    def act_on_floating_literal(
        self, spelling: str, loc: SourceLocation | None = None
    ) -> e.Expr:
        text = spelling
        ty = self.ctx.double_type
        if text[-1] in "fF":
            ty = self.ctx.float_type
            text = text[:-1]
        elif text[-1] in "lL":
            text = text[:-1]
        try:
            value = float(text)
        except ValueError:
            self.diags.error(
                f"invalid floating literal '{spelling}'", loc
            )
            value = 0.0
        return e.FloatingLiteral(value, ty, loc)

    def act_on_numeric_literal(
        self, spelling: str, loc: SourceLocation | None = None
    ) -> e.Expr:
        lowered = spelling.lower()
        if (
            "." in spelling
            or (
                not lowered.startswith("0x")
                and ("e" in lowered)
            )
            or (lowered.startswith("0x") and "p" in lowered)
            or (
                not lowered.startswith("0x")
                and spelling[-1] in "fF"
                and all(c in "0123456789.fF" for c in spelling)
                and any(c in "0123456789" for c in spelling)
                and "." in spelling
            )
        ):
            return self.act_on_floating_literal(spelling, loc)
        return self.act_on_integer_literal(spelling, loc)

    def act_on_char_literal(
        self, spelling: str, loc: SourceLocation | None = None
    ) -> e.Expr:
        body = spelling[1:-1]
        if body.startswith("\\"):
            escapes = {
                "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92,
                "'": 39, '"': 34, "a": 7, "b": 8, "f": 12, "v": 11,
            }
            value = escapes.get(body[1:2])
            if value is None:
                if body[1:2] == "x":
                    value = int(body[2:], 16)
                else:
                    self.diags.error(
                        f"unknown escape sequence '{body}'", loc
                    )
                    value = 0
        else:
            value = ord(body[0]) if body else 0
        return e.CharacterLiteral(value, self.ctx.int_type, loc)

    def act_on_string_literal(
        self, spelling: str, loc: SourceLocation | None = None
    ) -> e.Expr:
        body = spelling[1:-1]
        decoded = (
            body.encode("utf-8")
            .decode("unicode_escape")
        )
        ty = self.ctx.get_constant_array(
            self.ctx.char_type, len(decoded) + 1
        )
        return e.StringLiteral(decoded, ty, loc)

    def act_on_bool_literal(
        self, value: bool, loc: SourceLocation | None = None
    ) -> e.Expr:
        return e.BoolLiteralExpr(value, self.ctx.bool_type, loc)

    def act_on_id_expression(
        self, name: str, loc: SourceLocation | None = None
    ) -> e.Expr | None:
        decl = self.scope.lookup(name)
        if decl is None:
            self.diags.error(f"use of undeclared identifier '{name}'", loc)
            return self.recovery_expr([], loc)
        if isinstance(decl, EnumConstantDecl):
            return e.IntegerLiteral(decl.value, decl.type, loc)
        if isinstance(decl, FunctionDecl):
            return e.DeclRefExpr(
                decl, decl.type, e.ValueCategory.RVALUE, loc
            )
        if isinstance(decl, VarDecl):
            qt = decl.type
            canonical = desugar(qt)
            if isinstance(canonical.type, ReferenceType):
                # References are transparent in expressions: the DeclRef
                # has the referenced type and is an lvalue.
                return e.DeclRefExpr(
                    decl,
                    canonical.type.pointee,
                    e.ValueCategory.LVALUE,
                    loc,
                )
            return e.DeclRefExpr(decl, qt, e.ValueCategory.LVALUE, loc)
        self.diags.error(f"'{name}' does not name a value", loc)
        return self.recovery_expr([], loc)

    def act_on_paren_expr(
        self, sub: e.Expr, loc: SourceLocation | None = None
    ) -> e.Expr:
        return e.ParenExpr(sub, loc)

    def recovery_expr(
        self,
        subexprs: Sequence[e.Expr],
        loc: SourceLocation | None = None,
    ) -> e.RecoveryExpr:
        """Build an error-recovery placeholder (clang's RecoveryExpr) so
        parsing continues past a semantic error without cascades."""
        _ERRORS_RECOVERED.inc()
        return e.RecoveryExpr(
            [x for x in subexprs if x is not None],
            self.ctx.int_type,
            loc,
        )

    def act_on_unary_op(
        self,
        opcode: e.UnaryOperatorKind,
        sub: e.Expr,
        loc: SourceLocation | None = None,
    ) -> e.Expr:
        if e.contains_errors(sub):
            return self.recovery_expr([sub], loc)
        U = e.UnaryOperatorKind
        if opcode.is_increment_decrement():
            if not sub.is_lvalue:
                self.diags.error(
                    "expression is not assignable", loc
                )
            ty = desugar(sub.type)
            if not (ty.is_arithmetic() or ty.is_pointer()):
                self.diags.error(
                    f"cannot increment value of type "
                    f"'{sub.type.spelling()}'",
                    loc,
                )
            return e.UnaryOperator(
                opcode, sub, sub.type.unqualified(), e.ValueCategory.RVALUE, loc
            )
        if opcode == U.ADDR_OF:
            if not sub.is_lvalue:
                self.diags.error(
                    "cannot take the address of an rvalue", loc
                )
            return e.UnaryOperator(
                opcode,
                sub,
                self.ctx.get_pointer(sub.type),
                e.ValueCategory.RVALUE,
                loc,
            )
        if opcode == U.DEREF:
            sub = self.default_lvalue_conversion(sub)
            canonical = desugar(sub.type)
            if not canonical.is_pointer():
                self.diags.error(
                    f"indirection requires pointer operand "
                    f"('{sub.type.spelling()}' invalid)",
                    loc,
                )
                return sub
            return e.UnaryOperator(
                opcode,
                sub,
                canonical.type.pointee,
                e.ValueCategory.LVALUE,
                loc,
            )
        if opcode in (U.PLUS, U.MINUS, U.NOT):
            sub = self.default_lvalue_conversion(sub)
            if not desugar(sub.type).is_arithmetic():
                self.diags.error(
                    f"invalid argument type '{sub.type.spelling()}' to "
                    f"unary expression",
                    loc,
                )
            if opcode == U.NOT and not desugar(sub.type).is_integer():
                self.diags.error(
                    "operand of '~' must have integer type", loc
                )
            sub = self.integer_promotion(sub)
            return e.UnaryOperator(
                opcode, sub, sub.type, e.ValueCategory.RVALUE, loc
            )
        if opcode == U.LNOT:
            sub = self.check_condition(sub, loc)
            return e.UnaryOperator(
                opcode, sub, self.ctx.int_type, e.ValueCategory.RVALUE, loc
            )
        raise AssertionError(opcode)

    def act_on_binary_op(
        self,
        opcode: e.BinaryOperatorKind,
        lhs: e.Expr,
        rhs: e.Expr,
        loc: SourceLocation | None = None,
    ) -> e.Expr:
        if e.contains_errors(lhs, rhs):
            return self.recovery_expr([lhs, rhs], loc)
        B = e.BinaryOperatorKind
        if opcode == B.ASSIGN:
            return self._build_assignment(lhs, rhs, loc)
        if opcode.is_compound_assignment():
            return self._build_compound_assignment(opcode, lhs, rhs, loc)
        if opcode in (B.LAND, B.LOR):
            lhs = self.check_condition(lhs, loc)
            rhs = self.check_condition(rhs, loc)
            return e.BinaryOperator(
                opcode, lhs, rhs, self.ctx.int_type,
                e.ValueCategory.RVALUE, loc,
            )
        if opcode == B.COMMA:
            lhs = self.default_lvalue_conversion(lhs)
            rhs = self.default_lvalue_conversion(rhs)
            return e.BinaryOperator(
                opcode, lhs, rhs, rhs.type, e.ValueCategory.RVALUE, loc
            )
        lhs = self.default_lvalue_conversion(lhs)
        rhs = self.default_lvalue_conversion(rhs)
        lty, rty = desugar(lhs.type), desugar(rhs.type)
        # Pointer arithmetic and comparison.
        if lty.is_pointer() or rty.is_pointer():
            return self._build_pointer_binop(opcode, lhs, rhs, loc)
        if not (lty.is_arithmetic() and rty.is_arithmetic()):
            self.diags.error(
                f"invalid operands to binary expression "
                f"('{lhs.type.spelling()}' and '{rhs.type.spelling()}')",
                loc,
            )
            return e.BinaryOperator(
                opcode, lhs, rhs, self.ctx.int_type,
                e.ValueCategory.RVALUE, loc,
            )
        lhs, rhs, common = self.usual_arithmetic_conversions(lhs, rhs)
        if opcode.is_comparison():
            result_ty = self.ctx.int_type
        else:
            result_ty = common
        if opcode in (B.REM, B.SHL, B.SHR, B.AND, B.OR, B.XOR):
            if not desugar(common).is_integer():
                self.diags.error(
                    f"invalid operands to binary '{opcode.value}' "
                    "(floating point)",
                    loc,
                )
        return e.BinaryOperator(
            opcode, lhs, rhs, result_ty, e.ValueCategory.RVALUE, loc
        )

    def _build_pointer_binop(
        self,
        opcode: e.BinaryOperatorKind,
        lhs: e.Expr,
        rhs: e.Expr,
        loc,
    ) -> e.Expr:
        B = e.BinaryOperatorKind
        lty, rty = desugar(lhs.type), desugar(rhs.type)
        if opcode == B.ADD:
            if lty.is_pointer() and rty.is_integer():
                return e.BinaryOperator(
                    opcode, lhs, rhs, lhs.type, e.ValueCategory.RVALUE, loc
                )
            if lty.is_integer() and rty.is_pointer():
                return e.BinaryOperator(
                    opcode, lhs, rhs, rhs.type, e.ValueCategory.RVALUE, loc
                )
        if opcode == B.SUB:
            if lty.is_pointer() and rty.is_integer():
                return e.BinaryOperator(
                    opcode, lhs, rhs, lhs.type, e.ValueCategory.RVALUE, loc
                )
            if lty.is_pointer() and rty.is_pointer():
                return e.BinaryOperator(
                    opcode,
                    lhs,
                    rhs,
                    self.ctx.ptrdiff_type,
                    e.ValueCategory.RVALUE,
                    loc,
                )
        if opcode.is_comparison() and lty.is_pointer() and rty.is_pointer():
            return e.BinaryOperator(
                opcode, lhs, rhs, self.ctx.int_type,
                e.ValueCategory.RVALUE, loc,
            )
        self.diags.error(
            f"invalid operands to binary '{opcode.value}' "
            f"('{lhs.type.spelling()}' and '{rhs.type.spelling()}')",
            loc,
        )
        return e.BinaryOperator(
            opcode, lhs, rhs, self.ctx.int_type, e.ValueCategory.RVALUE, loc
        )

    def _build_assignment(
        self, lhs: e.Expr, rhs: e.Expr, loc
    ) -> e.Expr:
        if not lhs.is_lvalue:
            self.diags.error("expression is not assignable", loc)
        if lhs.type.is_const:
            self.diags.error(
                "cannot assign to const-qualified variable", loc
            )
        rhs = self.implicit_convert(rhs, lhs.type, "assignment")
        return e.BinaryOperator(
            e.BinaryOperatorKind.ASSIGN,
            lhs,
            rhs,
            lhs.type.unqualified(),
            e.ValueCategory.RVALUE,
            loc,
        )

    def _build_compound_assignment(
        self,
        opcode: e.BinaryOperatorKind,
        lhs: e.Expr,
        rhs: e.Expr,
        loc,
    ) -> e.Expr:
        if not lhs.is_lvalue:
            self.diags.error("expression is not assignable", loc)
        lty = desugar(lhs.type)
        rhs = self.default_lvalue_conversion(rhs)
        if lty.is_pointer():
            underlying = opcode.underlying_compound_op()
            if underlying not in (
                e.BinaryOperatorKind.ADD,
                e.BinaryOperatorKind.SUB,
            ) or not desugar(rhs.type).is_integer():
                self.diags.error(
                    f"invalid operands to '{opcode.value}'", loc
                )
            computation = lhs.type
        else:
            rvalue_lhs = self.default_lvalue_conversion(lhs)
            _, rhs, computation = self.usual_arithmetic_conversions(
                rvalue_lhs, rhs
            )
        return e.CompoundAssignOperator(
            opcode, lhs, rhs, lhs.type.unqualified(), computation, loc
        )

    def act_on_conditional_op(
        self,
        cond: e.Expr,
        true_expr: e.Expr,
        false_expr: e.Expr,
        loc=None,
    ) -> e.Expr:
        if e.contains_errors(cond, true_expr, false_expr):
            return self.recovery_expr(
                [cond, true_expr, false_expr], loc
            )
        cond = self.check_condition(cond, loc)
        true_expr = self.default_lvalue_conversion(true_expr)
        false_expr = self.default_lvalue_conversion(false_expr)
        tty, fty = desugar(true_expr.type), desugar(false_expr.type)
        if tty.is_arithmetic() and fty.is_arithmetic():
            true_expr, false_expr, common = (
                self.usual_arithmetic_conversions(true_expr, false_expr)
            )
        elif tty.is_pointer() and fty.is_pointer():
            common = true_expr.type
        elif tty.is_void() and fty.is_void():
            common = self.ctx.void_type
        else:
            self.diags.error(
                "incompatible operand types in conditional expression "
                f"('{true_expr.type.spelling()}' and "
                f"'{false_expr.type.spelling()}')",
                loc,
            )
            common = true_expr.type
        return e.ConditionalOperator(
            cond, true_expr, false_expr, common, loc
        )

    def act_on_array_subscript(
        self, base: e.Expr, index: e.Expr, loc=None
    ) -> e.Expr:
        if e.contains_errors(base, index):
            return self.recovery_expr([base, index], loc)
        base = self.default_function_array_conversion(base)
        if base.is_lvalue and not desugar(base.type).is_pointer():
            base = self.default_lvalue_conversion(base)
        index = self.default_lvalue_conversion(index)
        bty = desugar(base.type)
        ity = desugar(index.type)
        # C allows E1[E2] == E2[E1].
        if ity.is_pointer() and bty.is_integer():
            base, index = index, base
            bty, ity = ity, bty
        if not bty.is_pointer():
            self.diags.error(
                "subscripted value is not an array or pointer", loc
            )
            return base
        if not ity.is_integer():
            self.diags.error("array subscript is not an integer", loc)
        return e.ArraySubscriptExpr(
            base, index, bty.type.pointee, loc
        )

    def act_on_call(
        self, callee: e.Expr, args: list[e.Expr], loc=None
    ) -> e.Expr:
        if e.contains_errors(callee, *args):
            return self.recovery_expr([callee, *args], loc)
        callee_conv = self.default_function_array_conversion(callee)
        cty = desugar(callee_conv.type)
        fn_type: FunctionType | None = None
        if isinstance(cty.type, PointerType):
            pointee = desugar(cty.type.pointee)
            if isinstance(pointee.type, FunctionType):
                fn_type = pointee.type
        elif isinstance(cty.type, FunctionType):
            fn_type = cty.type
        if fn_type is None:
            self.diags.error(
                "called object is not a function or function pointer",
                loc,
            )
            return e.CallExpr(callee_conv, args, self.ctx.int_type, loc)
        nparams = len(fn_type.params)
        if len(args) < nparams or (
            len(args) > nparams and not fn_type.is_variadic
        ):
            self.diags.error(
                f"function expects {nparams} argument(s), "
                f"got {len(args)}",
                loc,
            )
        converted: list[e.Expr] = []
        for i, arg in enumerate(args):
            if i < nparams:
                converted.append(
                    self.implicit_convert(
                        arg, fn_type.params[i], "argument passing"
                    )
                )
            else:
                # Default argument promotions for variadic arguments.
                arg = self.default_lvalue_conversion(arg)
                aty = desugar(arg.type)
                if aty.is_integer():
                    arg = self.integer_promotion(arg)
                elif aty.is_floating() and self.ctx.type_width(aty) < 64:
                    arg = self._convert_arith(arg, self.ctx.double_type)
                converted.append(arg)
        return e.CallExpr(
            callee_conv, converted, fn_type.return_type, loc
        )

    def act_on_member_access(
        self, base: e.Expr, member_name: str, is_arrow: bool, loc=None
    ) -> e.Expr:
        if e.contains_errors(base):
            return self.recovery_expr([base], loc)
        if is_arrow:
            base = self.default_lvalue_conversion(base)
            bty = desugar(base.type)
            if not bty.is_pointer():
                self.diags.error(
                    "member reference type is not a pointer", loc
                )
                return base
            record_qt = desugar(bty.type.pointee)
        else:
            record_qt = desugar(base.type)
        if not isinstance(record_qt.type, RecordType):
            self.diags.error(
                f"member reference base type "
                f"'{base.type.spelling()}' is not a structure or union",
                loc,
            )
            return base
        record = record_qt.type.decl
        field = record.field_named(member_name)
        if field is None:
            self.diags.error(
                f"no member named '{member_name}' in "
                f"'{record_qt.spelling()}'",
                loc,
            )
            return base
        return e.MemberExpr(base, field, is_arrow, field.type, loc)

    def act_on_cstyle_cast(
        self, target: QualType, sub: e.Expr, loc=None
    ) -> e.Expr:
        sub = self.default_lvalue_conversion(sub)
        src = desugar(sub.type)
        dst = desugar(target)
        if dst.is_void():
            kind = e.CastKind.TO_VOID
        elif dst.is_arithmetic() and src.is_arithmetic():
            if dst.is_bool():
                return e.CStyleCastExpr(
                    e.CastKind.INTEGRAL_TO_BOOLEAN
                    if src.is_integer()
                    else e.CastKind.FLOATING_TO_BOOLEAN,
                    sub,
                    target,
                )
            if src.is_integer() and dst.is_integer():
                kind = e.CastKind.INTEGRAL_CAST
            elif src.is_integer():
                kind = e.CastKind.INTEGRAL_TO_FLOATING
            elif dst.is_integer():
                kind = e.CastKind.FLOATING_TO_INTEGRAL
            else:
                kind = e.CastKind.FLOATING_CAST
        elif dst.is_pointer() and (src.is_pointer() or src.is_integer()):
            kind = e.CastKind.BITCAST
        elif dst.is_integer() and src.is_pointer():
            kind = e.CastKind.BITCAST
        else:
            self.diags.error(
                f"cannot cast '{sub.type.spelling()}' to "
                f"'{target.spelling()}'",
                loc,
            )
            kind = e.CastKind.NOOP
        return e.CStyleCastExpr(kind, sub, target, e.ValueCategory.RVALUE, loc)

    def act_on_sizeof(
        self,
        argument_type: QualType | None,
        argument_expr: e.Expr | None,
        loc=None,
    ) -> e.Expr:
        return e.UnaryExprOrTypeTraitExpr(
            "sizeof",
            argument_type,
            argument_expr,
            self.ctx.size_type,
            loc,
        )

    # ==================================================================
    # Statements
    # ==================================================================
    def act_on_if_stmt(
        self, cond: e.Expr, then_stmt: s.Stmt, else_stmt=None, loc=None
    ) -> s.Stmt:
        return s.IfStmt(self.check_condition(cond, loc), then_stmt, else_stmt, loc)

    def act_on_while_stmt(self, cond: e.Expr, body: s.Stmt, loc=None):
        return s.WhileStmt(self.check_condition(cond, loc), body, loc)

    def act_on_do_stmt(self, body: s.Stmt, cond: e.Expr, loc=None):
        return s.DoStmt(body, self.check_condition(cond, loc), loc)

    def act_on_for_stmt(
        self,
        init: s.Stmt | None,
        cond: e.Expr | None,
        inc: e.Expr | None,
        body: s.Stmt,
        loc=None,
    ) -> s.Stmt:
        if cond is not None:
            cond = self.check_condition(cond, loc)
        if inc is not None and isinstance(inc, e.Expr):
            inc = self.default_lvalue_conversion(inc) if False else inc
        return s.ForStmt(init, cond, inc, body, loc)

    def act_on_return_stmt(self, value: e.Expr | None, loc=None) -> s.Stmt:
        fn = self.current_function
        if fn is None:
            self.diags.error("'return' outside of a function", loc)
            return s.ReturnStmt(value, loc)
        ret_ty = desugar(fn.return_type)
        if ret_ty.is_void():
            if value is not None:
                self.diags.error(
                    f"void function '{fn.name}' should not return a value",
                    loc,
                )
                value = None
        else:
            if value is None:
                self.diags.error(
                    f"non-void function '{fn.name}' should return a value",
                    loc,
                )
            else:
                value = self.implicit_convert(
                    value, fn.return_type, "return"
                )
        return s.ReturnStmt(value, loc)

    def enter_loop(self) -> None:
        self._loop_depth += 1

    def exit_loop(self) -> None:
        self._loop_depth -= 1

    def enter_switch(self) -> None:
        self._switch_depth += 1

    def exit_switch(self) -> None:
        self._switch_depth -= 1

    def act_on_break_stmt(self, loc=None) -> s.Stmt:
        if self._loop_depth == 0 and self._switch_depth == 0:
            self.diags.error(
                "'break' statement not in loop or switch statement", loc
            )
        return s.BreakStmt(loc)

    def act_on_continue_stmt(self, loc=None) -> s.Stmt:
        if self._loop_depth == 0:
            self.diags.error(
                "'continue' statement not in loop statement", loc
            )
        return s.ContinueStmt(loc)

    # ------------------------------------------------------------------
    # Range-based for loop de-sugaring (paper Listing "rangeloop")
    # ------------------------------------------------------------------
    def act_on_cxx_for_range_header(
        self,
        loop_var_type: QualType,
        loop_var_name: str,
        range_expr: e.Expr,
        loc=None,
    ) -> dict:
        """Build the de-sugared range-for header declarations.

        Produces (as in clang, and the paper's listing)::

            auto &&__range = <range_expr>;
            auto __begin = std::begin(__range);   // here: array decay
            auto __end   = std::end(__range);     // begin + N
            for (; __begin != __end; ++__begin) {
              T [&]Val = *__begin;
              ...

        The range must be a constant-size array in MiniC (iterator classes
        would need overload resolution, which is exactly the base-language
        dependence the paper cites as the reason these expressions must be
        built in Sema).
        """
        ctx = self.ctx
        range_ty = desugar(range_expr.type)
        if not isinstance(range_ty.type, ConstantArrayType):
            self.diags.error(
                "range-based for requires an array of known bound "
                f"(got '{range_expr.type.spelling()}')",
                loc,
            )
            # Error recovery: pretend a 0-length int array.
            arr_qt = ctx.get_constant_array(ctx.int_type, 0)
            range_ty = desugar(arr_qt)
        array_ty = range_ty.type
        assert isinstance(array_ty, ConstantArrayType)
        elem_ty = array_ty.element
        ptr_ty = ctx.get_pointer(elem_ty)

        range_decl = VarDecl(
            "__range1",
            ctx.get_reference(range_expr.type),
            range_expr,
            location=loc,
        )
        range_decl.is_implicit = True
        range_ref = e.DeclRefExpr(
            range_decl, range_expr.type, e.ValueCategory.LVALUE, loc
        )
        begin_init = e.ImplicitCastExpr(
            e.CastKind.ARRAY_TO_POINTER_DECAY, range_ref, ptr_ty
        )
        begin_decl = VarDecl("__begin1", ptr_ty, begin_init, location=loc)
        begin_decl.is_implicit = True
        end_init = e.BinaryOperator(
            e.BinaryOperatorKind.ADD,
            e.ImplicitCastExpr(
                e.CastKind.ARRAY_TO_POINTER_DECAY,
                e.DeclRefExpr(
                    range_decl,
                    range_expr.type,
                    e.ValueCategory.LVALUE,
                    loc,
                ),
                ptr_ty,
            ),
            e.IntegerLiteral(array_ty.size, ctx.ptrdiff_type, loc),
            ptr_ty,
            e.ValueCategory.RVALUE,
            loc,
        )
        end_decl = VarDecl("__end1", ptr_ty, end_init, location=loc)
        end_decl.is_implicit = True

        def begin_ref() -> e.Expr:
            return e.DeclRefExpr(
                begin_decl, ptr_ty, e.ValueCategory.LVALUE, loc
            )

        cond = e.BinaryOperator(
            e.BinaryOperatorKind.NE,
            e.ImplicitCastExpr(
                e.CastKind.LVALUE_TO_RVALUE, begin_ref(), ptr_ty
            ),
            e.ImplicitCastExpr(
                e.CastKind.LVALUE_TO_RVALUE,
                e.DeclRefExpr(
                    end_decl, ptr_ty, e.ValueCategory.LVALUE, loc
                ),
                ptr_ty,
            ),
            ctx.int_type,
            e.ValueCategory.RVALUE,
            loc,
        )
        inc = e.UnaryOperator(
            e.UnaryOperatorKind.PRE_INC,
            begin_ref(),
            ptr_ty,
            e.ValueCategory.RVALUE,
            loc,
        )
        deref = e.UnaryOperator(
            e.UnaryOperatorKind.DEREF,
            e.ImplicitCastExpr(
                e.CastKind.LVALUE_TO_RVALUE, begin_ref(), ptr_ty
            ),
            elem_ty,
            e.ValueCategory.LVALUE,
            loc,
        )
        lv_canonical = desugar(loop_var_type)
        if isinstance(lv_canonical.type, ReferenceType):
            loop_var_init: e.Expr = deref
        else:
            loop_var_init = self.implicit_convert(
                deref, loop_var_type, "range-for initialization"
            )
        loop_var = VarDecl(
            loop_var_name, loop_var_type, loop_var_init, location=loc
        )
        self.scope.declare(loop_var)
        return {
            "range_stmt": s.DeclStmt([range_decl], loc),
            "begin_stmt": s.DeclStmt([begin_decl], loc),
            "end_stmt": s.DeclStmt([end_decl], loc),
            "cond": cond,
            "inc": inc,
            "loop_var_stmt": s.DeclStmt([loop_var], loc),
            "begin_decl": begin_decl,
            "end_decl": end_decl,
        }

    def act_on_cxx_for_range_stmt(
        self, header: dict, body: s.Stmt, loc=None
    ) -> s.CXXForRangeStmt:
        return s.CXXForRangeStmt(
            header["range_stmt"],
            header["begin_stmt"],
            header["end_stmt"],
            header["cond"],
            header["inc"],
            header["loop_var_stmt"],
            body,
            loc,
        )
