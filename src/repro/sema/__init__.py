"""Semantic analysis layer (paper Fig. 1: Sema).

The Parser steers control flow and pushes syntactic elements to Sema, which
performs type checking, creates implicit AST nodes (casts, captures), and —
for the shadow-AST representation — already performs a significant part of
code generation while building the AST (paper §1.2/§2).

Submodules:

* :mod:`repro.sema.scope` — lexical scopes and name lookup,
* :mod:`repro.sema.expr_eval` — constant expression evaluation,
* :mod:`repro.sema.sema` — the Sema facade with clang-style ``act_on_*``
  parser actions,
* :mod:`repro.sema.canonical_loop` — OpenMP canonical loop form analysis,
* :mod:`repro.sema.omp_sema` — OpenMP directive/clauses semantic checking
  and AST construction for both representations.
"""

from repro.sema.scope import Scope, ScopeKind
from repro.sema.sema import Sema
from repro.sema.canonical_loop import (
    CanonicalLoopAnalysis,
    LoopDirection,
    analyze_canonical_loop,
)

__all__ = [
    "CanonicalLoopAnalysis",
    "LoopDirection",
    "Scope",
    "ScopeKind",
    "Sema",
    "analyze_canonical_loop",
]
