"""Constant-expression evaluation over the AST (clang's ``ExprConstant``).

Used for: OpenMP clause arguments (``partial(N)``, ``sizes(...)`` must be
constant positive integers), array bounds, case labels, and the on-the-fly
folding done by Sema and the IRBuilder.
"""

from __future__ import annotations

from typing import Optional

from repro.astlib import exprs as e
from repro.astlib.context import ASTContext
from repro.astlib.decls import EnumConstantDecl, VarDecl
from repro.astlib.types import QualType, desugar


class NotConstant(Exception):
    """The expression is not an integer constant expression."""


def _wrap_to_type(ctx: ASTContext, value: int, qt: QualType) -> int:
    """Wrap *value* to the representable range of integer type *qt*."""
    ty = desugar(qt)
    if not ty.is_integer():
        return value
    width = ctx.type_width(ty)
    mask = (1 << width) - 1
    value &= mask
    if ty.is_signed_integer() and value >= 1 << (width - 1):
        value -= 1 << width
    return value


class IntExprEvaluator:
    """Evaluates integer constant expressions; raises :class:`NotConstant`
    when the expression is not one."""

    def __init__(self, ctx: ASTContext) -> None:
        self.ctx = ctx

    def evaluate(self, expr: e.Expr) -> int:
        value = self._eval(expr)
        return _wrap_to_type(self.ctx, value, expr.type)

    def try_evaluate(self, expr: Optional[e.Expr]) -> int | None:
        if expr is None:
            return None
        try:
            return self.evaluate(expr)
        except NotConstant:
            return None

    # ------------------------------------------------------------------
    def _eval(self, expr: e.Expr) -> int:
        if isinstance(expr, e.IntegerLiteral):
            return expr.value
        if isinstance(expr, e.CharacterLiteral):
            return expr.value
        if isinstance(expr, e.BoolLiteralExpr):
            return 1 if expr.value else 0
        if isinstance(expr, e.ParenExpr):
            return self._eval(expr.sub_expr)
        if isinstance(expr, e.ConstantExpr):
            return expr.value
        if isinstance(expr, (e.ImplicitCastExpr, e.CStyleCastExpr)):
            inner = self._eval(expr.sub_expr)
            return _wrap_to_type(self.ctx, inner, expr.type)
        if isinstance(expr, e.DeclRefExpr):
            decl = expr.decl
            if isinstance(decl, EnumConstantDecl):
                return decl.value
            if (
                isinstance(decl, VarDecl)
                and decl.type.is_const
                and decl.init is not None
            ):
                # const int N = 16;  -- usable in constant contexts in our
                # C dialect (C++ semantics; convenient for examples).
                return self._eval(decl.init)
            raise NotConstant(
                f"read of non-const variable '{decl.name}' is not "
                "allowed in a constant expression"
            )
        if isinstance(expr, e.UnaryExprOrTypeTraitExpr):
            if expr.trait == "sizeof":
                target = (
                    expr.argument_type
                    if expr.argument_type is not None
                    else expr.argument_expr.type
                )
                return self.ctx.type_size_bytes(target)
            raise NotConstant(f"trait {expr.trait} is not constant")
        if isinstance(expr, e.UnaryOperator):
            sub = self._eval(expr.sub_expr)
            op = expr.opcode
            if op == e.UnaryOperatorKind.MINUS:
                return -sub
            if op == e.UnaryOperatorKind.PLUS:
                return sub
            if op == e.UnaryOperatorKind.NOT:
                return ~sub
            if op == e.UnaryOperatorKind.LNOT:
                return 0 if sub else 1
            raise NotConstant(f"operator {op.value} is not constant")
        if isinstance(expr, e.ConditionalOperator):
            return (
                self._eval(expr.true_expr)
                if self._eval(expr.cond)
                else self._eval(expr.false_expr)
            )
        if isinstance(expr, e.BinaryOperator):
            op = expr.opcode
            if op == e.BinaryOperatorKind.LAND:
                return (
                    1
                    if self._eval(expr.lhs) and self._eval(expr.rhs)
                    else 0
                )
            if op == e.BinaryOperatorKind.LOR:
                return (
                    1
                    if self._eval(expr.lhs) or self._eval(expr.rhs)
                    else 0
                )
            if op == e.BinaryOperatorKind.COMMA:
                raise NotConstant("comma operator in constant expression")
            if op.is_assignment():
                raise NotConstant(
                    "assignment in constant expression"
                )
            lhs = self._eval(expr.lhs)
            rhs = self._eval(expr.rhs)
            return self._apply_binop(op, lhs, rhs, expr.type)
        raise NotConstant(
            f"{type(expr).__name__} is not an integer constant expression"
        )

    def _apply_binop(
        self,
        op: e.BinaryOperatorKind,
        lhs: int,
        rhs: int,
        result_type: QualType,
    ) -> int:
        B = e.BinaryOperatorKind
        if op == B.ADD:
            return lhs + rhs
        if op == B.SUB:
            return lhs - rhs
        if op == B.MUL:
            return lhs * rhs
        if op in (B.DIV, B.REM):
            if rhs == 0:
                raise NotConstant("division by zero")
            q = abs(lhs) // abs(rhs)
            if (lhs < 0) != (rhs < 0):
                q = -q
            return q if op == B.DIV else lhs - q * rhs
        if op == B.SHL:
            return lhs << (rhs & 63)
        if op == B.SHR:
            # Arithmetic shift for signed, logical via wrapping otherwise.
            return lhs >> (rhs & 63)
        if op == B.AND:
            return lhs & rhs
        if op == B.OR:
            return lhs | rhs
        if op == B.XOR:
            return lhs ^ rhs
        if op == B.LT:
            return 1 if lhs < rhs else 0
        if op == B.GT:
            return 1 if lhs > rhs else 0
        if op == B.LE:
            return 1 if lhs <= rhs else 0
        if op == B.GE:
            return 1 if lhs >= rhs else 0
        if op == B.EQ:
            return 1 if lhs == rhs else 0
        if op == B.NE:
            return 1 if lhs != rhs else 0
        raise NotConstant(f"operator {op.value} not constant-evaluable")
