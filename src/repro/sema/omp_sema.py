"""OpenMP semantic analysis: directive construction and clause checking.

Implements both representations the paper describes:

* **Shadow AST mode** (default; paper §2): loop transformations build their
  transformed AST here in Sema; worksharing directives populate the
  ``OMPLoopDirective`` shadow helper expressions (the "code generation that
  already takes place when creating the AST").
* **IRBuilder mode** (``-fopenmp-enable-irbuilder``; paper §3): associated
  loops are wrapped in ``OMPCanonicalLoop`` meta nodes carrying only the
  distance function, user value function and user variable reference; all
  loop code generation moves to :mod:`repro.ompirbuilder`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.astlib import clauses as cl
from repro.astlib import exprs as e
from repro.astlib import omp
from repro.astlib import stmts as s
from repro.astlib.decls import (
    CapturedDecl,
    Decl,
    FunctionDecl,
    ImplicitParamDecl,
    ParmVarDecl,
    RecordDecl,
    VarDecl,
)
from repro.astlib.types import QualType, desugar
from repro.core.canonical import build_canonical_loop
from repro.instrument import time_trace_scope
from repro.core.shadow import (
    DEFAULT_CONSUMED_UNROLL_FACTOR,
    ShadowTransformBuilder,
    build_fuse_transform,
    build_interchange_transform,
    build_reverse_transform,
    build_tile_transform,
    build_unroll_transform,
)
from repro.sema.canonical_loop import (
    CanonicalLoopAnalysis,
    analyze_canonical_loop,
    collect_loop_nest,
)
from repro.sema.expr_eval import NotConstant
from repro.sourcemgr.location import SourceLocation

if TYPE_CHECKING:
    from repro.sema.sema import Sema


#: Directive spellings handled by :meth:`OpenMPSema.act_on_directive`.
LOOP_DIRECTIVES = {
    "for": omp.OMPForDirective,
    "parallel for": omp.OMPParallelForDirective,
    "simd": omp.OMPSimdDirective,
    "for simd": omp.OMPForSimdDirective,
    "parallel for simd": omp.OMPParallelForSimdDirective,
    "taskloop": omp.OMPTaskloopDirective,
}

TRANSFORM_DIRECTIVES = {
    "unroll": omp.OMPUnrollDirective,
    "tile": omp.OMPTileDirective,
    # OpenMP 6.0 loop transformations (paper §4 expected extensions).
    "reverse": omp.OMPReverseDirective,
    "interchange": omp.OMPInterchangeDirective,
    "fuse": omp.OMPFuseDirective,
}

REGION_DIRECTIVES = {
    "parallel": omp.OMPParallelDirective,
    "master": omp.OMPMasterDirective,
    "single": omp.OMPSingleDirective,
    "critical": omp.OMPCriticalDirective,
}

STANDALONE_DIRECTIVES = {
    "barrier": omp.OMPBarrierDirective,
}

#: Clauses permitted per directive (subset sufficient for the paper).
_ALLOWED_CLAUSES: dict[str, tuple[type, ...]] = {
    "parallel": (
        cl.OMPNumThreadsClause,
        cl.OMPIfClause,
        cl.OMPPrivateClause,
        cl.OMPFirstprivateClause,
        cl.OMPSharedClause,
        cl.OMPReductionClause,
        cl.OMPDefaultClause,
    ),
    "for": (
        cl.OMPScheduleClause,
        cl.OMPCollapseClause,
        cl.OMPPrivateClause,
        cl.OMPFirstprivateClause,
        cl.OMPLastprivateClause,
        cl.OMPReductionClause,
        cl.OMPNowaitClause,
        cl.OMPOrderedClause,
    ),
    "simd": (
        cl.OMPCollapseClause,
        cl.OMPSimdlenClause,
        cl.OMPPrivateClause,
        cl.OMPLastprivateClause,
        cl.OMPReductionClause,
    ),
    "taskloop": (
        cl.OMPCollapseClause,
        cl.OMPPrivateClause,
        cl.OMPFirstprivateClause,
        cl.OMPLastprivateClause,
        cl.OMPNumThreadsClause,
    ),
    "unroll": (cl.OMPFullClause, cl.OMPPartialClause),
    "tile": (cl.OMPSizesClause,),
    "reverse": (),
    "interchange": (cl.OMPPermutationClause,),
    "fuse": (),
    "master": (),
    "single": (cl.OMPPrivateClause, cl.OMPFirstprivateClause,
               cl.OMPNowaitClause),
    "critical": (),
    "barrier": (),
}


def _allowed_clauses_for(name: str) -> tuple[type, ...]:
    if name in _ALLOWED_CLAUSES:
        return _ALLOWED_CLAUSES[name]
    # Combined directives allow the union of their parts.
    parts = name.split(" ")
    allowed: tuple[type, ...] = ()
    for part in parts:
        allowed += _ALLOWED_CLAUSES.get(part, ())
    return allowed


class OpenMPSema:
    """OpenMP-specific Sema helper; reachable as ``sema.openmp``."""

    def __init__(self, sema: "Sema") -> None:
        self.sema = sema
        #: -fopenmp-enable-irbuilder: build OMPCanonicalLoop nodes and let
        #: the OpenMPIRBuilder generate loop code (paper §3).
        self.use_irbuilder = False

    # Convenience ------------------------------------------------------
    @property
    def ctx(self):
        return self.sema.ctx

    @property
    def diags(self):
        return self.sema.diags

    # ==================================================================
    # Entry point
    # ==================================================================
    def act_on_directive(
        self,
        name: str,
        clauses: Sequence[cl.OMPClause],
        associated_stmt: Optional[s.Stmt],
        loc: SourceLocation | None = None,
    ) -> s.Stmt | None:
        with time_trace_scope("Sema.OMPDirective", name):
            return self._act_on_directive(
                name, clauses, associated_stmt, loc
            )

    def _act_on_directive(
        self,
        name: str,
        clauses: Sequence[cl.OMPClause],
        associated_stmt: Optional[s.Stmt],
        loc: SourceLocation | None = None,
    ) -> s.Stmt | None:
        self._check_allowed_clauses(name, clauses, loc)
        if name in STANDALONE_DIRECTIVES:
            return STANDALONE_DIRECTIVES[name](clauses, None, loc)
        if associated_stmt is None:
            self.diags.error(
                f"expected a statement after '#pragma omp {name}'", loc
            )
            return None
        if name in REGION_DIRECTIVES:
            return self._build_region_directive(
                name, clauses, associated_stmt, loc
            )
        if name in TRANSFORM_DIRECTIVES:
            return self._build_transform_directive(
                name, clauses, associated_stmt, loc
            )
        if name in LOOP_DIRECTIVES:
            return self._build_loop_directive(
                name, clauses, associated_stmt, loc
            )
        self.diags.error(
            f"unknown OpenMP directive '#pragma omp {name}'", loc
        )
        return None

    def _check_allowed_clauses(
        self,
        name: str,
        clauses: Sequence[cl.OMPClause],
        loc: SourceLocation | None,
    ) -> None:
        allowed = _allowed_clauses_for(name)
        for clause in clauses:
            if not isinstance(clause, allowed):
                self.diags.error(
                    f"'{clause.clause_name}' clause is not allowed on "
                    f"directive '#pragma omp {name}'",
                    clause.location or loc,
                )

    # ==================================================================
    # Region directives (parallel, master, single, critical)
    # ==================================================================
    def _build_region_directive(
        self,
        name: str,
        clauses: Sequence[cl.OMPClause],
        body: s.Stmt,
        loc: SourceLocation | None,
    ) -> s.Stmt:
        directive_cls = REGION_DIRECTIVES[name]
        if name == "parallel":
            captured = self.build_captured_stmt(body, with_thread_ids=True)
            return directive_cls(clauses, captured, loc)
        if name == "critical":
            return omp.OMPCriticalDirective("", clauses, body, loc)
        return directive_cls(clauses, body, loc)

    # ==================================================================
    # Worksharing / simd loop directives
    # ==================================================================
    def _collapse_depth(
        self, clauses: Sequence[cl.OMPClause], loc
    ) -> int:
        collapse = next(
            (c for c in clauses if isinstance(c, cl.OMPCollapseClause)),
            None,
        )
        if collapse is None:
            return 1
        value = self._require_positive_constant(
            collapse.num_loops, "collapse", loc
        )
        return value if value is not None else 1

    def _require_positive_constant(
        self, expr: e.Expr, clause_name: str, loc
    ) -> int | None:
        try:
            value = self.sema.evaluator.evaluate(expr)
        except NotConstant as err:
            diag = self.diags.error(
                f"argument of '{clause_name}' clause must be a constant "
                "expression",
                expr.location or loc,
            )
            diag.add_note(str(err), expr.location or loc)
            return None
        if value <= 0:
            self.diags.error(
                f"argument to '{clause_name}' clause must be a strictly "
                f"positive integer value",
                expr.location or loc,
            )
            return None
        return value

    def _resolve_associated_loop(
        self, stmt: s.Stmt, directive_name: str, loc
    ) -> tuple[s.Stmt | None, list[s.Stmt]]:
        """Resolve the loop a directive is associated with.

        When the associated statement is itself a loop transformation, use
        its transformed AST (``get_transformed_stmt()``, paper §2) and
        collect its pre-init statements.  Transformation directives compose,
        so this recurses through a chain of them.
        """
        pre_inits: list[s.Stmt] = []
        current: s.Stmt | None = stmt
        while isinstance(current, omp.OMPLoopTransformationDirective):
            transformed = current.get_transformed_stmt()
            if transformed is None:
                kind = current.directive_name
                if isinstance(
                    current, omp.OMPUnrollDirective
                ) and current.has_clause(cl.OMPFullClause):
                    kind = "unroll full"
                if isinstance(
                    current, omp.OMPUnrollDirective
                ) and not current.has_clause(cl.OMPFullClause):
                    # Heuristic unroll: whether a loop remains (and its
                    # shape) is unspecified, so nothing may consume it.
                    self.diags.error(
                        f"'#pragma omp {directive_name}' cannot be "
                        "applied to the '#pragma omp unroll' construct "
                        "without a 'partial' clause: the shape of the "
                        "generated loop is unspecified",
                        current.location or loc,
                    )
                else:
                    self.diags.error(
                        f"'#pragma omp {directive_name}' cannot be "
                        f"applied to the '#pragma omp {kind}' construct: "
                        "a fully unrolled loop leaves no generated loop "
                        "to associate with",
                        current.location or loc,
                    )
                return None, pre_inits
            if current.pre_inits is not None:
                pre_inits.append(current.pre_inits)
            current = transformed
        return current, pre_inits

    def _build_loop_directive(
        self,
        name: str,
        clauses: Sequence[cl.OMPClause],
        associated: s.Stmt,
        loc: SourceLocation | None,
    ) -> s.Stmt | None:
        directive_cls = LOOP_DIRECTIVES[name]
        depth = self._collapse_depth(clauses, loc)

        if self.use_irbuilder and isinstance(
            associated, omp.OMPLoopTransformationDirective
        ):
            # §4 extension: in the canonical representation a consuming
            # directive takes the CanonicalLoopInfo handle(s) returned by
            # the inner transformation ("after tiling a loop, it is
            # possible to apply worksharing to the outer loop") — no
            # transformed AST exists to re-analyse.
            return self._build_loop_over_transform(
                name, directive_cls, clauses, associated, depth, loc
            )

        loop, pre_inits = self._resolve_associated_loop(
            associated, name, loc
        )
        if loop is None:
            return None
        analyses = collect_loop_nest(
            self.ctx, self.diags, loop, depth, name
        )
        if analyses is None:
            return None
        self._check_data_sharing_clauses(clauses, loc)

        if self.use_irbuilder:
            # Canonical representation: wrap each nest level; codegen
            # calls OpenMPIRBuilder.create_canonical_loop (+
            # collapse_loops for collapse>1, create_workshare_loop for
            # the schedule) — paper §3.2.
            canonical_loops = [
                build_canonical_loop(self.ctx, a) for a in analyses
            ]
            body: s.Stmt = canonical_loops[0]
            if pre_inits:
                body = s.CompoundStmt([*pre_inits, body])
            # Directives containing `parallel` still outline via a
            # CapturedStmt even in IRBuilder mode — "other directives
            # such as OMPParallelForDirective still may [wrap the
            # associated statement]" (paper §3.1).
            if "parallel" in name:
                body = self.build_captured_stmt(
                    body, with_thread_ids=True
                )
            directive = directive_cls(
                clauses, body, depth, loc
            )
            directive.analyses = analyses  # type: ignore[attr-defined]
            directive.canonical_loops = canonical_loops  # type: ignore[attr-defined]
            return directive

        # Shadow representation: capture the region and populate the
        # shadow helper expressions used by CodeGen.
        nest_stmt: s.Stmt = loop
        if pre_inits:
            nest_stmt = s.CompoundStmt([*pre_inits, loop])
        captured = self.build_captured_stmt(
            nest_stmt, with_thread_ids=True
        )
        directive = directive_cls(clauses, captured, depth, loc)
        self._populate_loop_helpers(directive, analyses)
        directive.analyses = analyses  # type: ignore[attr-defined]
        return directive

    def _consumable_inner_transform(
        self,
        name: str,
        inner: omp.OMPLoopTransformationDirective,
        loc,
    ) -> omp.OMPLoopTransformationDirective | None:
        """Validate *inner* as a generated-loop producer a consuming
        directive can chain from in the OpenMPIRBuilder representation
        (paper §4: composed transformations hand over their
        ``CanonicalLoopInfo`` result instead of a transformed AST)."""
        if isinstance(inner, omp.OMPUnrollDirective):
            if inner.has_clause(cl.OMPFullClause):
                self.diags.error(
                    f"'#pragma omp {name}' cannot be applied to the "
                    "'#pragma omp unroll full' construct: a fully "
                    "unrolled loop leaves no generated loop to "
                    "associate with",
                    inner.location or loc,
                )
                return None
            if not inner.has_clause(cl.OMPPartialClause):
                self.diags.error(
                    f"'#pragma omp {name}' cannot be applied to the "
                    "'#pragma omp unroll' construct without a "
                    "'partial' clause: the shape of the generated loop "
                    "is unspecified",
                    inner.location or loc,
                )
                return None
        if (
            getattr(inner, "canonical_loops", None) is None
            and getattr(inner, "consumed_transform", None) is None
            and getattr(inner, "fuse_canonical_loops", None) is None
        ):
            self.diags.error(
                f"'#pragma omp {name}' cannot consume this construct "
                "in the OpenMPIRBuilder representation",
                inner.location or loc,
            )
            return None
        return inner

    def _inner_transform_analyses(
        self, inner: omp.OMPLoopTransformationDirective
    ) -> list:
        analyses = getattr(inner, "analyses", None)
        if analyses is None:
            analyses = [getattr(inner, "analysis")]
        return list(analyses)

    def _build_loop_over_transform(
        self,
        name: str,
        directive_cls,
        clauses: Sequence[cl.OMPClause],
        inner: omp.OMPLoopTransformationDirective,
        depth: int,
        loc,
    ) -> s.Stmt | None:
        if self._consumable_inner_transform(name, inner, loc) is None:
            return None
        if depth != 1:
            self.diags.error(
                "collapse over a generated loop nest is not supported",
                loc,
            )
            return None
        self._check_data_sharing_clauses(clauses, loc)
        body: s.Stmt = inner
        if "parallel" in name:
            body = self.build_captured_stmt(body, with_thread_ids=True)
        directive = directive_cls(clauses, body, depth, loc)
        directive.consumed_transform = inner  # type: ignore[attr-defined]
        directive.analyses = self._inner_transform_analyses(inner)  # type: ignore[attr-defined]
        return directive

    def _check_data_sharing_clauses(
        self, clauses: Sequence[cl.OMPClause], loc
    ) -> None:
        seen: dict[int, str] = {}
        for clause in clauses:
            if not isinstance(clause, cl.OMPVarListClause):
                continue
            for ref in clause.variables:
                decl = ref.decl
                if not isinstance(decl, VarDecl):
                    self.diags.error(
                        f"'{decl.name}' is not a variable", ref.location
                    )
                    continue
                prev = seen.get(id(decl))
                compatible = {"firstprivate", "lastprivate"}
                if prev is not None and not (
                    prev in compatible
                    and clause.clause_name in compatible
                ):
                    self.diags.error(
                        f"variable '{decl.name}' cannot appear in both "
                        f"'{prev}' and '{clause.clause_name}' clauses",
                        ref.location,
                    )
                seen[id(decl)] = clause.clause_name
                if (
                    clause.clause_name == "reduction"
                    and not desugar(decl.type).is_arithmetic()
                ):
                    self.diags.error(
                        f"variable '{decl.name}' of type "
                        f"'{decl.type.spelling()}' is not valid for "
                        "reduction",
                        ref.location,
                    )

    def _populate_loop_helpers(
        self,
        directive: omp.OMPLoopDirective,
        analyses: list[CanonicalLoopAnalysis],
    ) -> None:
        """Fill the ``OMPLoopDirective`` shadow AST (paper §1.2).

        Creates the ``.omp.iv`` / ``.omp.lb`` / ``.omp.ub`` /
        ``.omp.stride`` bookkeeping variables and the expressions CodeGen
        later emits — the "significant portion of the code generation
        [that] already takes place when creating the AST".
        """
        ctx = self.ctx
        x = ShadowTransformBuilder(ctx)
        B = e.BinaryOperatorKind
        primary = analyses[0]
        logical = primary.logical_type

        def mkvar(name_suffix: str, init: e.Expr | None) -> VarDecl:
            var = VarDecl(f".omp.{name_suffix}", logical, init)
            var.is_implicit = True
            return var

        # Combined trip count over the collapsed nest: product of per-loop
        # trip counts, computed in the widest logical type.
        trip: e.Expr = x.build_trip_count_expr(primary)
        for inner in analyses[1:]:
            inner_trip = x._cast_to(
                x.build_trip_count_expr(inner), logical
            )
            trip = e.BinaryOperator(B.MUL, trip, inner_trip, logical)

        iv = mkvar("iv", None)
        lb = mkvar("lb", e.IntegerLiteral(0, logical))
        last_iter_expr = e.BinaryOperator(
            B.SUB, trip, e.IntegerLiteral(1, logical), logical
        )
        ub = mkvar("ub", last_iter_expr)
        stride = mkvar("stride", e.IntegerLiteral(1, logical))
        is_last = VarDecl(
            ".omp.is_last", ctx.int_type, e.IntegerLiteral(0, ctx.int_type)
        )
        is_last.is_implicit = True

        h = directive.helpers
        h.pre_init = s.DeclStmt([lb, ub, stride, is_last])
        h.iter_init = s.DeclStmt([iv])
        h.iteration_variable = x._ref(iv)
        h.num_iterations = trip
        h.last_iteration = last_iter_expr
        h.calc_last_iteration = e.BinaryOperator(
            B.EQ,
            x._load(iv),
            e.BinaryOperator(
                B.SUB,
                x.build_trip_count_expr(primary),
                e.IntegerLiteral(1, logical),
                logical,
            ),
            ctx.int_type,
        )
        # Precondition: at least one iteration will execute (over the
        # whole collapsed space).
        h.precondition = e.BinaryOperator(
            B.GT,
            x._copy(trip),
            e.IntegerLiteral(0, logical),
            ctx.int_type,
        )
        h.init = e.BinaryOperator(
            B.ASSIGN, x._ref(iv), x._load(lb), logical
        )
        h.cond = e.BinaryOperator(
            B.LE, x._load(iv), x._load(ub), ctx.int_type
        )
        h.inc = e.UnaryOperator(
            e.UnaryOperatorKind.PRE_INC, x._ref(iv), logical
        )
        h.lower_bound_variable = x._ref(lb)
        h.upper_bound_variable = x._ref(ub)
        h.stride_variable = x._ref(stride)
        h.is_last_iter_variable = x._ref(is_last)
        # EnsureUpperBound: ub = min(ub, numiters-1), as conditional assign.
        h.ensure_upper_bound = e.BinaryOperator(
            B.ASSIGN,
            x._ref(ub),
            e.ConditionalOperator(
                e.BinaryOperator(
                    B.LT, x._load(ub), x._copy(last_iter_expr),
                    ctx.int_type,
                ),
                x._load(ub),
                x._copy(last_iter_expr),
                logical,
            ),
            logical,
        )
        h.next_lower_bound = e.CompoundAssignOperator(
            B.ADD_ASSIGN, x._ref(lb), x._load(stride), logical, logical
        )
        h.next_upper_bound = e.CompoundAssignOperator(
            B.ADD_ASSIGN, x._ref(ub), x._load(stride), logical, logical
        )

        # Per-loop helpers: counters and the update recomputing each user
        # variable from the logical iteration number.
        remaining: e.Expr = x._load(iv)
        for level, analysis in enumerate(analyses):
            bundle = directive.loop_helpers[level]
            # Index of this loop level within the collapsed space:
            # iv / (product of inner trip counts) % own trip count.
            inner_product: e.Expr | None = None
            for inner in analyses[level + 1 :]:
                t = x._cast_to(x.build_trip_count_expr(inner), logical)
                inner_product = (
                    t
                    if inner_product is None
                    else e.BinaryOperator(B.MUL, inner_product, t, logical)
                )
            level_index: e.Expr = x._load(iv)
            if inner_product is not None:
                level_index = e.BinaryOperator(
                    B.DIV, level_index, inner_product, logical
                )
            own_trip = x._cast_to(
                x.build_trip_count_expr(analysis), logical
            )
            level_index = e.BinaryOperator(
                B.REM, level_index, own_trip, logical
            )
            env_stmts, subs, pairs = x._rebuild_user_env(
                analysis, level_index
            )
            bundle.counter = x._ref(analysis.iter_var)
            bundle.private_counter = x._ref(pairs[0][1])
            bundle.counter_init = x._copy(analysis.lower_bound)
            bundle.counter_update = (
                env_stmts[0]
                if len(env_stmts) == 1
                else s.CompoundStmt(env_stmts)
            )
            #: (original decl, per-iteration private decl) pairs CodeGen
            #: redirects when emitting the body
            bundle.counter_substitutions = pairs  # type: ignore[attr-defined]
            final_env, _, _ = x._rebuild_user_env(
                analysis,
                x._cast_to(x.build_trip_count_expr(analysis), logical),
            )
            bundle.counter_final = (
                final_env[0]
                if len(final_env) == 1
                else s.CompoundStmt(final_env)
            )

    # ==================================================================
    # Loop transformation directives (the paper's contribution)
    # ==================================================================
    def _build_transform_directive(
        self,
        name: str,
        clauses: Sequence[cl.OMPClause],
        associated: s.Stmt,
        loc: SourceLocation | None,
    ) -> s.Stmt | None:
        if name == "unroll":
            return self._build_unroll(clauses, associated, loc)
        if name == "tile":
            return self._build_tile(clauses, associated, loc)
        if name == "reverse":
            return self._build_reverse(clauses, associated, loc)
        if name == "interchange":
            return self._build_interchange(clauses, associated, loc)
        return self._build_fuse(clauses, associated, loc)

    @staticmethod
    def _representative_loop_location(stmt: s.Stmt | None):
        """A source location of the associated *literal* loop (paper §2:
        shadow-AST diagnostics should point at a representative location
        even when they concern generated code)."""
        current = stmt
        while isinstance(current, omp.OMPExecutableDirective):
            current = current.associated_stmt
        if current is not None and current.location.is_valid():
            return current.location
        return None

    def _check_constant_trip_count(
        self,
        analysis: CanonicalLoopAnalysis,
        loc,
        syntactic_stmt: s.Stmt | None = None,
    ) -> int | None:
        ev = self.sema.evaluator
        builder = ShadowTransformBuilder(self.ctx)
        trip_expr = builder.build_trip_count_expr(analysis)
        try:
            return ev.evaluate(trip_expr)
        except NotConstant as err:
            diag = self.diags.error(
                "loop to fully unroll must have a constant trip count",
                loc,
            )
            note_loc = (
                self._representative_loop_location(syntactic_stmt)
                or analysis.loop_stmt.location
            )
            diag.add_note(str(err), note_loc)
            return None

    @staticmethod
    def _merge_pre_inits(parts: list[s.Stmt | None]) -> s.Stmt | None:
        stmts = [p for p in parts if p is not None]
        if not stmts:
            return None
        if len(stmts) == 1:
            return stmts[0]
        return s.CompoundStmt(stmts)

    def _build_unroll(
        self,
        clauses: Sequence[cl.OMPClause],
        associated: s.Stmt,
        loc: SourceLocation | None,
    ) -> s.Stmt | None:
        full = next(
            (c for c in clauses if isinstance(c, cl.OMPFullClause)), None
        )
        partial = next(
            (c for c in clauses if isinstance(c, cl.OMPPartialClause)),
            None,
        )
        if full is not None and partial is not None:
            self.diags.error(
                "'full' and 'partial' clauses are mutually exclusive on "
                "'#pragma omp unroll'",
                loc,
            )
            return None
        if self.use_irbuilder and isinstance(
            associated, omp.OMPLoopTransformationDirective
        ):
            # §4 composition: consume the inner transformation's
            # CanonicalLoopInfo handle instead of re-analysing a
            # transformed AST (which the canonical representation never
            # builds).
            if (
                self._consumable_inner_transform(
                    "unroll", associated, loc
                )
                is None
            ):
                return None
            if partial is not None and partial.factor is not None:
                if (
                    self._require_positive_constant(
                        partial.factor, "partial", loc
                    )
                    is None
                ):
                    return None
            directive = omp.OMPUnrollDirective(
                clauses, associated, 1, None, None, loc
            )
            directive.consumed_transform = associated  # type: ignore[attr-defined]
            directive.analysis = self._inner_transform_analyses(  # type: ignore[attr-defined]
                associated
            )[0]
            return directive
        loop, pre_inits = self._resolve_associated_loop(
            associated, "unroll", loc
        )
        if loop is None:
            return None
        analysis = analyze_canonical_loop(
            self.ctx, self.diags, loop, "unroll"
        )
        if analysis is None:
            self.diags.remarks.missed(
                "unroll",
                "unroll not applied: associated loop is not in "
                "OpenMP canonical form",
                location=loc,
            )
            return None
        if full is not None:
            # Full unrolling requires a compile-time constant trip count.
            # The constant evaluation may fail on internal shadow-AST
            # variables; per the paper (§2) the note then names them
            # (".capture_expr.") but points at a *representative source
            # location* of the associated literal loop.
            self._check_constant_trip_count(analysis, loc, associated)

        factor: int | None = None
        if partial is not None:
            if partial.factor is not None:
                factor = self._require_positive_constant(
                    partial.factor, "partial", loc
                )
                if factor is None:
                    return None
            else:
                # `partial` without argument: implementation chooses; the
                # current implementation uses two (paper §2.2).
                factor = DEFAULT_CONSUMED_UNROLL_FACTOR

        if self.use_irbuilder:
            canonical = build_canonical_loop(self.ctx, analysis)
            wrapped: s.Stmt = canonical
            if pre_inits:
                wrapped = s.CompoundStmt([*pre_inits, wrapped])
            directive = omp.OMPUnrollDirective(
                clauses, wrapped, 1, None, None, loc
            )
            directive.analysis = analysis  # type: ignore[attr-defined]
            directive.canonical_loops = [canonical]  # type: ignore[attr-defined]
            return directive

        result = build_unroll_transform(
            self.ctx, analysis, factor, full is not None
        )
        if full is not None:
            self.diags.remarks.passed(
                "unroll",
                "marked loop for full unrolling by the mid-end "
                "LoopUnroll pass (shadow AST builds no residual loop)",
                location=loc,
                full=True,
            )
        elif factor is not None:
            self.diags.remarks.passed(
                "unroll",
                f"unrolled loop by a factor of {factor} "
                "(shadow-AST strip-mine; body duplication deferred to "
                "the mid-end)",
                location=loc,
                factor=factor,
            )
        else:
            self.diags.remarks.analysis(
                "unroll",
                "loop marked for heuristic unrolling by the mid-end",
                location=loc,
            )
        # Note: the associated code is deliberately NOT wrapped in a
        # CapturedStmt — a loop transformation is never outlined by itself,
        # and capturing would redirect local variable references (paper
        # §2.1).  The *syntactic* child stays the statement as written
        # (possibly an inner transformation directive, paper Listing 5);
        # pre-inits of consumed inner transformations are folded into this
        # directive's own pre-inits so a consumer collects them in one step.
        directive = omp.OMPUnrollDirective(
            clauses,
            associated,
            1,
            result.transformed_stmt,
            self._merge_pre_inits([*pre_inits, result.pre_inits]),
            loc,
        )
        directive.analysis = analysis  # type: ignore[attr-defined]
        return directive

    def _build_tile(
        self,
        clauses: Sequence[cl.OMPClause],
        associated: s.Stmt,
        loc: SourceLocation | None,
    ) -> s.Stmt | None:
        sizes_clause = next(
            (c for c in clauses if isinstance(c, cl.OMPSizesClause)), None
        )
        if sizes_clause is None or not sizes_clause.sizes:
            self.diags.error(
                "expected 'sizes' clause on '#pragma omp tile'", loc
            )
            return None
        sizes: list[int] = []
        for size_expr in sizes_clause.sizes:
            value = self._require_positive_constant(
                size_expr, "sizes", loc
            )
            if value is None:
                return None
            sizes.append(value)
        depth = len(sizes)
        if self.use_irbuilder and isinstance(
            associated, omp.OMPLoopTransformationDirective
        ):
            # §4 composition over the inner transformation's generated
            # loop handle; only that single outermost handle is
            # available, so multi-dimensional tiling cannot apply.
            if (
                self._consumable_inner_transform("tile", associated, loc)
                is None
            ):
                return None
            if depth != 1:
                self.diags.error(
                    "'#pragma omp tile' over a generated loop supports "
                    "only a single 'sizes' dimension in the "
                    "OpenMPIRBuilder representation",
                    loc,
                )
                return None
            directive = omp.OMPTileDirective(
                clauses, associated, 1, None, None, loc
            )
            directive.consumed_transform = associated  # type: ignore[attr-defined]
            directive.tile_sizes = sizes  # type: ignore[attr-defined]
            directive.analyses = self._inner_transform_analyses(  # type: ignore[attr-defined]
                associated
            )
            return directive
        loop, pre_inits = self._resolve_associated_loop(
            associated, "tile", loc
        )
        if loop is None:
            return None
        analyses = collect_loop_nest(
            self.ctx, self.diags, loop, depth, "tile"
        )
        if analyses is None:
            self.diags.remarks.missed(
                "tile",
                f"tile not applied: associated statement is not a "
                f"perfect rectangular loop nest of depth {depth}",
                location=loc,
                depth=depth,
            )
            return None

        if self.use_irbuilder:
            canonical_loops = [
                build_canonical_loop(self.ctx, a) for a in analyses
            ]
            wrapped: s.Stmt = canonical_loops[0]
            if pre_inits:
                wrapped = s.CompoundStmt([*pre_inits, wrapped])
            directive = omp.OMPTileDirective(
                clauses, wrapped, depth, None, None, loc
            )
            directive.analyses = analyses  # type: ignore[attr-defined]
            directive.tile_sizes = sizes  # type: ignore[attr-defined]
            # One wrapper per nest level; CodeGen hands them to
            # OpenMPIRBuilder.tile_loops (paper §3.2).
            directive.canonical_loops = canonical_loops  # type: ignore[attr-defined]
            return directive

        result = build_tile_transform(self.ctx, analyses, sizes)
        self.diags.remarks.passed(
            "tile",
            f"tiled loop nest of depth {depth} with sizes "
            f"({', '.join(str(size) for size in sizes)})",
            location=loc,
            sizes=tuple(sizes),
        )
        directive = omp.OMPTileDirective(
            clauses,
            associated,
            depth,
            result.transformed_stmt,
            self._merge_pre_inits([*pre_inits, result.pre_inits]),
            loc,
        )
        directive.analyses = analyses  # type: ignore[attr-defined]
        directive.tile_sizes = sizes  # type: ignore[attr-defined]
        return directive

    def _build_reverse(
        self,
        clauses: Sequence[cl.OMPClause],
        associated: s.Stmt,
        loc: SourceLocation | None,
    ) -> s.Stmt | None:
        if self.use_irbuilder and isinstance(
            associated, omp.OMPLoopTransformationDirective
        ):
            if (
                self._consumable_inner_transform(
                    "reverse", associated, loc
                )
                is None
            ):
                return None
            directive = omp.OMPReverseDirective(
                clauses, associated, 1, None, None, loc
            )
            directive.consumed_transform = associated  # type: ignore[attr-defined]
            directive.analysis = self._inner_transform_analyses(  # type: ignore[attr-defined]
                associated
            )[0]
            return directive
        loop, pre_inits = self._resolve_associated_loop(
            associated, "reverse", loc
        )
        if loop is None:
            return None
        analysis = analyze_canonical_loop(
            self.ctx, self.diags, loop, "reverse"
        )
        if analysis is None:
            return None
        if self.use_irbuilder:
            canonical = build_canonical_loop(self.ctx, analysis)
            wrapped: s.Stmt = canonical
            if pre_inits:
                wrapped = s.CompoundStmt([*pre_inits, wrapped])
            directive = omp.OMPReverseDirective(
                clauses, wrapped, 1, None, None, loc
            )
            directive.analysis = analysis  # type: ignore[attr-defined]
            directive.canonical_loops = [canonical]  # type: ignore[attr-defined]
            return directive
        result = build_reverse_transform(self.ctx, analysis)
        self.diags.remarks.passed(
            "reverse", "reversed loop iteration order", location=loc
        )
        directive = omp.OMPReverseDirective(
            clauses,
            associated,
            1,
            result.transformed_stmt,
            self._merge_pre_inits([*pre_inits, result.pre_inits]),
            loc,
        )
        directive.analysis = analysis  # type: ignore[attr-defined]
        return directive

    def _build_interchange(
        self,
        clauses: Sequence[cl.OMPClause],
        associated: s.Stmt,
        loc: SourceLocation | None,
    ) -> s.Stmt | None:
        perm_clause = next(
            (
                c
                for c in clauses
                if isinstance(c, cl.OMPPermutationClause)
            ),
            None,
        )
        if self.use_irbuilder and isinstance(
            associated, omp.OMPLoopTransformationDirective
        ):
            # Only the single outermost generated handle is available,
            # and interchange needs a nest of at least two loops.
            self.diags.error(
                "'#pragma omp interchange' cannot be applied to a "
                "generated loop in the OpenMPIRBuilder representation: "
                "only one generated loop is available to permute",
                loc,
            )
            return None
        loop, pre_inits = self._resolve_associated_loop(
            associated, "interchange", loc
        )
        if loop is None:
            return None
        if perm_clause is not None:
            permutation: list[int] = []
            for expr in perm_clause.indices:
                value = self._require_positive_constant(
                    expr, "permutation", loc
                )
                if value is None:
                    return None
                permutation.append(value - 1)  # OpenMP uses 1-based
            depth = len(permutation)
            if sorted(permutation) != list(range(depth)):
                self.diags.error(
                    "'permutation' clause must name each loop of the "
                    "nest exactly once",
                    perm_clause.location or loc,
                )
                return None
        else:
            permutation = [1, 0]  # default: swap the two loops
            depth = 2
        analyses = collect_loop_nest(
            self.ctx, self.diags, loop, depth, "interchange"
        )
        if analyses is None:
            return None
        if self.use_irbuilder:
            canonical_loops = [
                build_canonical_loop(self.ctx, a) for a in analyses
            ]
            wrapped: s.Stmt = canonical_loops[0]
            if pre_inits:
                wrapped = s.CompoundStmt([*pre_inits, wrapped])
            directive = omp.OMPInterchangeDirective(
                clauses, wrapped, depth, None, None, loc
            )
            directive.analyses = analyses  # type: ignore[attr-defined]
            directive.canonical_loops = canonical_loops  # type: ignore[attr-defined]
            directive.permutation = permutation  # type: ignore[attr-defined]
            return directive
        result = build_interchange_transform(
            self.ctx, analyses, permutation
        )
        self.diags.remarks.passed(
            "interchange",
            "interchanged loop nest with permutation "
            f"({', '.join(str(p + 1) for p in permutation)})",
            location=loc,
            permutation=tuple(permutation),
        )
        directive = omp.OMPInterchangeDirective(
            clauses,
            associated,
            depth,
            result.transformed_stmt,
            self._merge_pre_inits([*pre_inits, result.pre_inits]),
            loc,
        )
        directive.analyses = analyses  # type: ignore[attr-defined]
        directive.permutation = permutation  # type: ignore[attr-defined]
        return directive

    def _build_fuse(
        self,
        clauses: Sequence[cl.OMPClause],
        associated: s.Stmt,
        loc: SourceLocation | None,
    ) -> s.Stmt | None:
        """``omp fuse`` applies to a *sequence* of loops written as a
        compound statement (paper §4: fusion handles "sequences of loops
        in addition to loop nests")."""
        if not isinstance(associated, s.CompoundStmt):
            self.diags.error(
                "'#pragma omp fuse' must be applied to a compound "
                "statement containing the loop sequence",
                loc,
            )
            return None
        analyses: list[CanonicalLoopAnalysis] = []
        for child in associated.statements:
            if isinstance(child, s.NullStmt):
                continue
            loop, child_pre = self._resolve_associated_loop(
                child, "fuse", loc
            )
            if loop is None:
                return None
            if child_pre:
                self.diags.error(
                    "'#pragma omp fuse' over transformed loops with "
                    "pre-initialization is not supported",
                    loc,
                )
                return None
            if not isinstance(loop, (s.ForStmt, s.CXXForRangeStmt)):
                self.diags.error(
                    "every statement in the '#pragma omp fuse' region "
                    "must be a canonical for loop",
                    child.location or loc,
                )
                return None
            analysis = analyze_canonical_loop(
                self.ctx, self.diags, loop, "fuse"
            )
            if analysis is None:
                return None
            analyses.append(analysis)
        if len(analyses) < 2:
            self.diags.error(
                "'#pragma omp fuse' requires at least two loops",
                loc,
            )
            return None
        if self.use_irbuilder:
            fuse_canonical_loops = [
                build_canonical_loop(self.ctx, a) for a in analyses
            ]
            wrapped = s.CompoundStmt(list(fuse_canonical_loops))
            directive = omp.OMPFuseDirective(
                clauses, wrapped, 1, None, None, loc
            )
            directive.analyses = analyses  # type: ignore[attr-defined]
            # One wrapper per *sibling* loop of the sequence; CodeGen
            # emits them consecutively and hands the handles to
            # OpenMPIRBuilder.fuse_loops.
            directive.fuse_canonical_loops = fuse_canonical_loops  # type: ignore[attr-defined]
            self.diags.remarks.passed(
                "fuse",
                f"fused {len(analyses)} loops into one",
                location=loc,
                num_loops=len(analyses),
            )
            return directive
        result = build_fuse_transform(self.ctx, analyses)
        self.diags.remarks.passed(
            "fuse",
            f"fused {len(analyses)} loops into one",
            location=loc,
            num_loops=len(analyses),
        )
        directive = omp.OMPFuseDirective(
            clauses,
            associated,
            1,
            result.transformed_stmt,
            result.pre_inits,
            loc,
        )
        directive.analyses = analyses  # type: ignore[attr-defined]
        return directive

    def _wrap_nest_in_canonical_loops(
        self, analyses: list[CanonicalLoopAnalysis]
    ) -> s.Stmt:
        """Wrap the outermost loop of a nest; inner loops are reached by
        the OpenMPIRBuilder through nested ``create_canonical_loop``
        callbacks (paper §3.2)."""
        return build_canonical_loop(self.ctx, analyses[0])

    # ==================================================================
    # Captured statements (early outlining support, paper §1.2)
    # ==================================================================
    def build_captured_stmt(
        self, body: s.Stmt, with_thread_ids: bool
    ) -> s.CapturedStmt:
        """Wrap *body* in a ``CapturedStmt``/``CapturedDecl`` pair.

        Computes the variables captured from enclosing scopes (they become
        fields of the implicit ``__context`` record) and attaches the
        implicit parameters the OpenMP runtime passes to the outlined
        function: ``.global_tid.``, ``.bound_tid.`` and ``__context``.
        """
        ctx = self.ctx
        captures = self.compute_captures(body)
        context_record = RecordDecl("", is_union=False)
        context_record.is_complete = True
        for var in captures:
            from repro.astlib.decls import FieldDecl

            field_ty = ctx.get_pointer(var.type)
            context_record.add_field(FieldDecl(var.name, field_ty))
        record_qt = ctx.get_record(context_record)

        params: list[ImplicitParamDecl] = []
        if with_thread_ids:
            tid_ty = ctx.get_pointer(
                ctx.int_type.with_const()
            ).with_const()
            tid_ty = QualType(
                tid_ty.type, is_const=True, is_restrict=True
            )
            params.append(ImplicitParamDecl(".global_tid.", tid_ty))
            params.append(ImplicitParamDecl(".bound_tid.", tid_ty))
        context_ty = QualType(
            ctx.get_pointer(record_qt).type,
            is_const=True,
            is_restrict=True,
        )
        params.append(ImplicitParamDecl("__context", context_ty))

        decl = CapturedDecl(body, params)
        captured = s.CapturedStmt(decl, captures)
        captured.context_record = context_record  # type: ignore[attr-defined]
        return captured

    def compute_captures(self, body: s.Stmt) -> list[VarDecl]:
        """Variables referenced in *body* but declared outside it.

        Clang "keeps track of which variables are used inside the
        CapturedStmt to become parameters of the outlined function"
        (paper §1.2).
        """
        declared: set[int] = set()
        referenced: dict[int, VarDecl] = {}

        from repro.astlib.visitor import RecursiveASTVisitor

        class CaptureScanner(RecursiveASTVisitor):
            def visit_decl(self, decl: Decl) -> bool:
                if isinstance(decl, VarDecl):
                    declared.add(id(decl))
                return True

            def visit_stmt(self, stmt: s.Stmt) -> bool:
                if isinstance(stmt, e.DeclRefExpr):
                    decl = stmt.decl
                    if (
                        isinstance(decl, VarDecl)
                        and not isinstance(decl, ParmVarDecl)
                        and not decl.is_global
                        and not isinstance(decl, FunctionDecl)
                    ):
                        referenced.setdefault(id(decl), decl)
                return True

        CaptureScanner(traverse_shadow=False).traverse_stmt(body)
        return [
            var
            for key, var in referenced.items()
            if key not in declared
        ]
