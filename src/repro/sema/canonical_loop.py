"""OpenMP canonical loop form analysis (Sema layer).

OpenMP requires loops associated with loop-associated directives to have
the *canonical loop nest form*::

    for (init-expr; var relational-op b; incr-expr)

where ``init-expr`` initializes the loop iteration variable, the condition
compares it against a loop-invariant bound, and ``incr-expr`` advances it
by a loop-invariant step.  Sema must verify this to diagnose malformed
loops (the paper: "We still want to diagnose malformed loops in Sema"),
and extracts:

* the **loop iteration variable** (paper §3 terminology),
* lower bound, upper bound, step and direction,
* the **distance function** — the expression computing the trip count,
  evaluable before entering the loop,
* the **logical iteration counter** type: always an *unsigned* integer,
  because e.g. ``for (int32_t i = INT32_MIN; i < INT32_MAX; ++i)`` has
  0xfffffffe iterations which do not fit a signed 32-bit integer
  (paper §3.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.astlib import exprs as e
from repro.astlib import stmts as s
from repro.astlib.context import ASTContext
from repro.astlib.decls import VarDecl
from repro.astlib.types import QualType, desugar
from repro.diagnostics import DiagnosticsEngine
from repro.sema.expr_eval import IntExprEvaluator


class LoopDirection(enum.Enum):
    UP = "up"      # step > 0, condition < or <= or !=
    DOWN = "down"  # step < 0, condition > or >=


class NotCanonical(Exception):
    """Raised (internally) when the loop is not in canonical form; the
    public API reports a diagnostic and returns None instead."""


@dataclass
class CanonicalLoopAnalysis:
    """Everything Sema learns about one canonical loop."""

    loop_stmt: s.Stmt
    iter_var: VarDecl
    #: expression for the iteration variable's start value (paper: the
    #: loop iteration variable's value after the init statement)
    lower_bound: e.Expr
    #: loop-invariant bound from the condition
    upper_bound: e.Expr
    #: the (signed) step; positive for UP loops, negative for DOWN
    step: e.Expr
    step_value: int | None
    direction: LoopDirection
    #: condition includes equality (<= / >=)
    inclusive: bool
    #: condition was `!=` (allowed since OpenMP 5.0)
    is_inequality: bool
    #: the unsigned logical iteration counter type (paper §3.1)
    logical_type: QualType
    #: whether the iteration variable was declared in the init statement
    var_declared_in_init: bool
    body: s.Stmt = field(default=None)  # type: ignore[assignment]

    def trip_count_if_constant(
        self, ctx: ASTContext
    ) -> Optional[int]:
        """Constant trip count when lb/ub/step all fold, else None."""
        ev = IntExprEvaluator(ctx)
        lb = ev.try_evaluate(self.lower_bound)
        ub = ev.try_evaluate(self.upper_bound)
        step = (
            self.step_value
            if self.step_value is not None
            else ev.try_evaluate(self.step)
        )
        if lb is None or ub is None or step is None or step == 0:
            return None
        return compute_trip_count(
            lb, ub, step, self.inclusive, self.is_inequality
        )


def compute_trip_count(
    lb: int, ub: int, step: int, inclusive: bool, is_inequality: bool
) -> int:
    """The OpenMP logical iteration space size for given constant bounds."""
    if is_inequality:
        distance = ub - lb
        if step == 0 or distance % step != 0 or distance * step < 0:
            # Non-terminating or UB; model as the C semantics would loop.
            return max(0, distance // step if step else 0)
        return distance // step
    if step > 0:
        distance = ub - lb + (1 if inclusive else 0)
        if distance <= 0:
            return 0
        return (distance + step - 1) // step
    else:
        distance = lb - ub + (1 if inclusive else 0)
        if distance <= 0:
            return 0
        return (distance + (-step) - 1) // (-step)


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------
def _strip(expr: e.Expr) -> e.Expr:
    return expr.ignore_implicit_casts()


def _as_var_ref(expr: e.Expr) -> VarDecl | None:
    stripped = _strip(expr)
    if isinstance(stripped, e.DeclRefExpr) and isinstance(
        stripped.decl, VarDecl
    ):
        return stripped.decl
    return None


def _references_var(expr: e.Expr | None, var: VarDecl) -> bool:
    if expr is None:
        return False
    for node in expr.walk():
        if isinstance(node, e.DeclRefExpr) and node.decl is var:
            return True
    return False


def analyze_canonical_loop(
    ctx: ASTContext,
    diags: DiagnosticsEngine,
    loop: s.Stmt,
    directive_name: str = "for",
) -> CanonicalLoopAnalysis | None:
    """Analyze one loop; emits diagnostics and returns None when the loop
    violates the OpenMP canonical form."""
    if isinstance(loop, s.CXXForRangeStmt):
        return _analyze_range_for(ctx, diags, loop, directive_name)
    if not isinstance(loop, s.ForStmt):
        diags.error(
            f"statement after '#pragma omp {directive_name}' must be a "
            "for loop",
            loop.location,
        )
        return None
    try:
        return _analyze_for(ctx, diags, loop, directive_name)
    except NotCanonical:
        return None


def _analyze_for(
    ctx: ASTContext,
    diags: DiagnosticsEngine,
    loop: s.ForStmt,
    directive_name: str,
) -> CanonicalLoopAnalysis:
    # ---- init ----
    iter_var: VarDecl | None = None
    lower_bound: e.Expr | None = None
    var_declared = False
    init = loop.init
    if isinstance(init, s.DeclStmt) and len(init.decls) == 1:
        decl = init.decls[0]
        if isinstance(decl, VarDecl) and decl.init is not None:
            iter_var = decl
            lower_bound = decl.init
            var_declared = True
    elif isinstance(init, e.Expr):
        assign = _strip(init)
        if (
            isinstance(assign, e.BinaryOperator)
            and assign.opcode == e.BinaryOperatorKind.ASSIGN
        ):
            iter_var = _as_var_ref(assign.lhs)
            lower_bound = assign.rhs
    if iter_var is None or lower_bound is None:
        diags.error(
            "initialization clause of OpenMP for loop is not in "
            "canonical form ('var = init' or 'T var = init')",
            (init.location if init is not None else loop.location),
        )
        raise NotCanonical
    var_ty = desugar(iter_var.type)
    if not (var_ty.is_integer() or var_ty.is_pointer()):
        diags.error(
            f"variable '{iter_var.name}' must be of integer or pointer "
            "type in OpenMP for loop",
            iter_var.location,
        )
        raise NotCanonical

    # ---- condition ----
    cond = loop.cond
    if cond is None:
        diags.error(
            "condition of OpenMP for loop is missing",
            loop.location,
        )
        raise NotCanonical
    comparison = _strip(cond)
    # convert_to_bool may have wrapped the comparison.
    if (
        isinstance(comparison, e.ImplicitCastExpr)
    ):  # pragma: no cover - ignore_implicit_casts handles this
        comparison = _strip(comparison.sub_expr)
    if not (
        isinstance(comparison, e.BinaryOperator)
        and (
            comparison.opcode.is_relational()
            or comparison.opcode == e.BinaryOperatorKind.NE
        )
    ):
        diags.error(
            f"condition of OpenMP for loop must be a relational "
            f"comparison ('<', '<=', '>', '>=', or '!=') of loop "
            f"variable '{iter_var.name}'",
            cond.location,
        )
        raise NotCanonical
    op = comparison.opcode
    B = e.BinaryOperatorKind
    if _as_var_ref(comparison.lhs) is iter_var:
        upper_bound = comparison.rhs
        var_on_left = True
    elif _as_var_ref(comparison.rhs) is iter_var:
        upper_bound = comparison.lhs
        var_on_left = False
        flip = {B.LT: B.GT, B.GT: B.LT, B.LE: B.GE, B.GE: B.LE, B.NE: B.NE}
        op = flip[op]
    else:
        diags.error(
            f"condition of OpenMP for loop must involve loop variable "
            f"'{iter_var.name}'",
            cond.location,
        )
        raise NotCanonical
    if _references_var(upper_bound, iter_var):
        diags.error(
            "loop bound of OpenMP for loop must be loop-invariant",
            upper_bound.location,
        )
        raise NotCanonical
    is_inequality = op == B.NE
    inclusive = op in (B.LE, B.GE)
    cond_direction = (
        None
        if is_inequality
        else (LoopDirection.UP if op in (B.LT, B.LE) else LoopDirection.DOWN)
    )

    # ---- increment ----
    inc = loop.inc
    if inc is None:
        diags.error(
            "increment clause of OpenMP for loop is missing",
            loop.location,
        )
        raise NotCanonical
    step_expr, step_value = _analyze_increment(
        ctx, diags, inc, iter_var
    )
    if step_expr is None:
        raise NotCanonical
    if step_value is not None:
        inc_direction = (
            LoopDirection.UP if step_value > 0 else LoopDirection.DOWN
        )
        if step_value == 0:
            diags.error(
                "increment of OpenMP for loop must not be zero",
                inc.location,
            )
            raise NotCanonical
        if cond_direction is not None and inc_direction != cond_direction:
            diags.error(
                f"increment expression must "
                f"{'decrease' if cond_direction == LoopDirection.DOWN else 'increase'} "
                f"'{iter_var.name}' to match the loop condition",
                inc.location,
            )
            raise NotCanonical
        direction = inc_direction
    else:
        direction = cond_direction or LoopDirection.UP

    logical_type = _logical_counter_type(ctx, iter_var.type)
    return CanonicalLoopAnalysis(
        loop_stmt=loop,
        iter_var=iter_var,
        lower_bound=lower_bound,
        upper_bound=upper_bound,
        step=step_expr,
        step_value=step_value,
        direction=direction,
        inclusive=inclusive,
        is_inequality=is_inequality,
        logical_type=logical_type,
        var_declared_in_init=var_declared,
        body=loop.body,
    )


def _analyze_increment(
    ctx: ASTContext,
    diags: DiagnosticsEngine,
    inc: e.Expr,
    iter_var: VarDecl,
) -> tuple[e.Expr | None, int | None]:
    """Extract the (signed) step expression from the increment clause.

    Accepted forms: ``++v  v++  --v  v--  v += s  v -= s  v = v + s
    v = s + v  v = v - s``.
    """
    ev = IntExprEvaluator(ctx)
    stripped = _strip(inc)
    one = e.IntegerLiteral(1, ctx.int_type)
    if isinstance(stripped, e.UnaryOperator) and (
        stripped.opcode.is_increment_decrement()
    ):
        if _as_var_ref(stripped.sub_expr) is not iter_var:
            diags.error(
                f"increment clause must operate on loop variable "
                f"'{iter_var.name}'",
                inc.location,
            )
            return None, None
        if stripped.opcode.is_increment():
            return one, 1
        return e.IntegerLiteral(-1, ctx.int_type), -1
    if isinstance(stripped, e.CompoundAssignOperator):
        if _as_var_ref(stripped.lhs) is not iter_var:
            diags.error(
                f"increment clause must operate on loop variable "
                f"'{iter_var.name}'",
                inc.location,
            )
            return None, None
        if stripped.opcode == e.BinaryOperatorKind.ADD_ASSIGN:
            step = stripped.rhs
            value = ev.try_evaluate(step)
            return step, value
        if stripped.opcode == e.BinaryOperatorKind.SUB_ASSIGN:
            value = ev.try_evaluate(stripped.rhs)
            neg = e.UnaryOperator(
                e.UnaryOperatorKind.MINUS,
                stripped.rhs,
                stripped.rhs.type,
            )
            return neg, (-value if value is not None else None)
        diags.error(
            "increment clause of OpenMP for loop must perform simple "
            "addition or subtraction",
            inc.location,
        )
        return None, None
    if (
        isinstance(stripped, e.BinaryOperator)
        and stripped.opcode == e.BinaryOperatorKind.ASSIGN
        and _as_var_ref(stripped.lhs) is iter_var
    ):
        rhs = _strip(stripped.rhs)
        if isinstance(rhs, e.BinaryOperator) and rhs.opcode in (
            e.BinaryOperatorKind.ADD,
            e.BinaryOperatorKind.SUB,
        ):
            if _as_var_ref(rhs.lhs) is iter_var:
                step = rhs.rhs
            elif (
                rhs.opcode == e.BinaryOperatorKind.ADD
                and _as_var_ref(rhs.rhs) is iter_var
            ):
                step = rhs.lhs
            else:
                step = None
            if step is not None:
                value = ev.try_evaluate(step)
                if rhs.opcode == e.BinaryOperatorKind.SUB:
                    return (
                        e.UnaryOperator(
                            e.UnaryOperatorKind.MINUS, step, step.type
                        ),
                        -value if value is not None else None,
                    )
                return step, value
    diags.error(
        "increment clause of OpenMP for loop must perform simple "
        "addition or subtraction of the loop variable",
        inc.location,
    )
    return None, None


def _logical_counter_type(ctx: ASTContext, var_type: QualType) -> QualType:
    """The unsigned logical iteration counter type (paper §3.1).

    Unsigned with the width of the iteration variable (pointers use the
    pointer width): the trip count "will never be equal to or exceed the
    range of an unsigned integer of the same bitwidth".
    """
    canonical = desugar(var_type)
    if canonical.is_pointer():
        width = ctx.target.pointer_width
    else:
        width = max(32, ctx.type_width(canonical))
    return ctx.int_type_of_width(width, signed=False)


def _analyze_range_for(
    ctx: ASTContext,
    diags: DiagnosticsEngine,
    loop: s.CXXForRangeStmt,
    directive_name: str,
) -> CanonicalLoopAnalysis | None:
    """A de-sugared range-for is always canonical: iterate __begin
    (pointer) from begin to end by 1; the *loop user variable* is the
    dereferenced iterator (paper §3, Listing "rangeloop")."""
    begin_decl = loop.begin_stmt.single_decl
    end_decl = loop.end_stmt.single_decl
    assert isinstance(begin_decl, VarDecl) and isinstance(end_decl, VarDecl)
    lower = begin_decl.init
    upper = e.DeclRefExpr(
        end_decl, end_decl.type, e.ValueCategory.LVALUE, loop.location
    )
    assert lower is not None
    return CanonicalLoopAnalysis(
        loop_stmt=loop,
        iter_var=begin_decl,
        lower_bound=lower,
        upper_bound=upper,
        step=e.IntegerLiteral(1, ctx.int_type),
        step_value=1,
        direction=LoopDirection.UP,
        inclusive=False,
        is_inequality=True,
        logical_type=_logical_counter_type(ctx, begin_decl.type),
        var_declared_in_init=True,
        body=loop.body,
    )


# ---------------------------------------------------------------------------
# Loop nests
# ---------------------------------------------------------------------------
def collect_loop_nest(
    ctx: ASTContext,
    diags: DiagnosticsEngine,
    root: s.Stmt,
    depth: int,
    directive_name: str,
) -> list[CanonicalLoopAnalysis] | None:
    """Analyze a perfectly nested canonical loop nest of *depth* loops.

    For ``tile sizes(a, b)`` the two associated loops must be perfectly
    nested; between loop levels only a single compound statement wrapper
    is tolerated.
    """
    analyses: list[CanonicalLoopAnalysis] = []
    current: s.Stmt | None = root
    for level in range(depth):
        while isinstance(current, s.CompoundStmt):
            non_null = [
                st
                for st in current.statements
                if not isinstance(st, s.NullStmt)
            ]
            if len(non_null) != 1:
                diags.error(
                    f"'#pragma omp {directive_name}' requires a "
                    f"perfectly nested loop nest of depth {depth}; "
                    f"level {level + 1} contains extra statements",
                    current.location,
                )
                return None
            current = non_null[0]
        # Transparent canonical-loop wrappers may be removed losslessly.
        from repro.astlib.omp import OMPCanonicalLoop

        if isinstance(current, OMPCanonicalLoop):
            current = current.unwrap()
        if current is None or not isinstance(
            current, (s.ForStmt, s.CXXForRangeStmt)
        ):
            diags.error(
                f"expected {depth} nested for loop(s) after "
                f"'#pragma omp {directive_name}', found "
                f"{level} loop(s)",
                root.location if current is None else current.location,
            )
            return None
        analysis = analyze_canonical_loop(
            ctx, diags, current, directive_name
        )
        if analysis is None:
            return None
        analyses.append(analysis)
        current = analysis.body
    return analyses
