"""Lexical scopes and name lookup (clang's ``Scope`` + ``DeclContext``)."""

from __future__ import annotations

import enum
from typing import Iterator, Optional

from repro.astlib.decls import NamedDecl, RecordDecl, TypedefDecl


class ScopeKind(enum.Enum):
    TRANSLATION_UNIT = "translation unit"
    FUNCTION = "function"
    BLOCK = "block"
    FOR_INIT = "for init"  # scope of a for-loop's init-statement
    OPENMP_DIRECTIVE = "openmp directive"
    CAPTURED_REGION = "captured region"


class Scope:
    """One lexical scope; chained to its parent."""

    def __init__(
        self, kind: ScopeKind, parent: Optional["Scope"] = None
    ) -> None:
        self.kind = kind
        self.parent = parent
        self._decls: dict[str, NamedDecl] = {}
        self._tags: dict[str, NamedDecl] = {}  # struct/union/enum namespace

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    def declare(self, decl: NamedDecl) -> NamedDecl | None:
        """Add *decl*; returns a previous same-scope declaration if any
        (the caller decides whether that is a redefinition error)."""
        previous = self._decls.get(decl.name)
        self._decls[decl.name] = decl
        return previous

    def declare_tag(self, decl: NamedDecl) -> NamedDecl | None:
        previous = self._tags.get(decl.name)
        self._tags[decl.name] = decl
        return previous

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup_local(self, name: str) -> NamedDecl | None:
        return self._decls.get(name)

    def lookup(self, name: str) -> NamedDecl | None:
        scope: Scope | None = self
        while scope is not None:
            decl = scope._decls.get(name)
            if decl is not None:
                return decl
            scope = scope.parent
        return None

    def lookup_tag(self, name: str) -> NamedDecl | None:
        scope: Scope | None = self
        while scope is not None:
            decl = scope._tags.get(name)
            if decl is not None:
                return decl
            scope = scope.parent
        return None

    def is_type_name(self, name: str) -> bool:
        """The classic 'lexer hack': is *name* a typedef name here?"""
        decl = self.lookup(name)
        return isinstance(decl, TypedefDecl)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def ancestors(self) -> Iterator["Scope"]:
        scope: Scope | None = self
        while scope is not None:
            yield scope
            scope = scope.parent

    def innermost(self, *kinds: ScopeKind) -> Optional["Scope"]:
        for scope in self.ancestors():
            if scope.kind in kinds:
                return scope
        return None

    def local_decls(self) -> list[NamedDecl]:
        return list(self._decls.values())

    def depth(self) -> int:
        return sum(1 for _ in self.ancestors()) - 1

    def __repr__(self) -> str:
        return f"<Scope {self.kind.value} depth={self.depth()}>"
