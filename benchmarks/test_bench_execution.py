"""E6/E7 execution-side benchmarks.

Measures *dynamic instruction counts* of the interpreted programs — the
simulator-level stand-in for the performance effects the paper's
transformations target.  The shape to reproduce:

* unrolling reduces backedge/bookkeeping instructions per iteration, with
  diminishing returns at higher factors (E6);
* the directive version and the manually unrolled version cost the same
  (E7 — they are the same program);
* worksharing splits the per-thread work by roughly the team size.
"""

import pytest

from benchmarks.conftest import profiled_instruction_count
from repro.pipeline import run_source

SUM_LOOP = r"""
int main(void) {
  long acc = 0;
  %(pragma)s
  for (int i = 0; i < %(n)d; i += 1)
    acc += i;
  printf("%%d\n", (int)acc);
  return 0;
}
"""


class TestE6UnrollInstructionCounts:
    N = 2000

    def run_with(self, pragma, optimize=True):
        src = SUM_LOOP % {"pragma": pragma, "n": self.N}
        return run_source(src, optimize=optimize)

    @pytest.mark.parametrize("factor", [1, 2, 4, 8])
    def test_bench_unroll_factor_sweep(self, benchmark, factor):
        pragma = (
            f"#pragma omp unroll partial({factor})"
            if factor > 1
            else ""
        )
        result = benchmark(lambda: self.run_with(pragma))
        benchmark.extra_info["factor"] = factor
        benchmark.extra_info["instructions"] = (
            profiled_instruction_count(result)
        )
        assert int(result.stdout) == sum(range(self.N))

    def test_unroll_reduces_dynamic_instructions(self):
        """The headline shape: unrolled (post mid-end) executes fewer
        instructions than the plain loop, monotonically with factor."""
        counts = {}
        for factor in (1, 4, 8):
            pragma = (
                f"#pragma clang loop unroll_count({factor})"
                if factor > 1
                else ""
            )
            src = SUM_LOOP % {"pragma": pragma, "n": self.N}
            counts[factor] = run_source(
                src, openmp=False, optimize=True
            ).instruction_count
        assert counts[4] < counts[1]
        assert counts[8] < counts[4]
        # Diminishing returns: 4->8 saves less than 1->4.
        assert (counts[4] - counts[8]) < (counts[1] - counts[4])


class TestE7EquivalenceCost:
    DIRECTIVE = r"""
    int main(void) {
      long acc = 0;
      #pragma omp unroll partial(2)
      for (int i = 0; i < 1000; i += 1) acc += i;
      printf("%d\n", (int)acc);
      return 0;
    }
    """
    MANUAL = r"""
    int main(void) {
      long acc = 0;
      int i = 0;
      for (; i + 1 < 1000; i += 2) {
        acc += i;
        acc += i + 1;
      }
      for (; i < 1000; i += 1) acc += i;
      printf("%d\n", (int)acc);
      return 0;
    }
    """

    def test_bench_directive_version(self, benchmark):
        result = benchmark(
            lambda: run_source(self.DIRECTIVE, optimize=True)
        )
        benchmark.extra_info["instructions"] = (
            profiled_instruction_count(result)
        )

    def test_bench_manual_version(self, benchmark):
        result = benchmark(
            lambda: run_source(self.MANUAL, optimize=True)
        )
        benchmark.extra_info["instructions"] = (
            profiled_instruction_count(result)
        )

    def test_directive_close_to_manual_cost(self):
        """Same result; cost within a small constant factor of the
        hand-written version.  The directive version carries strip-mine
        bookkeeping (trip-count materialization, the `&&` tile guard,
        per-iteration user-variable reconstruction) that a real compiler
        erases with mem2reg+instcombine; our cleanup pipeline lacks
        mem2reg, so ~3x interpreted instructions is the honest simulator
        number (recorded in EXPERIMENTS.md)."""
        directive = run_source(self.DIRECTIVE, optimize=True)
        manual = run_source(self.MANUAL, optimize=True)
        assert directive.stdout == manual.stdout
        ratio = (
            directive.instruction_count / manual.instruction_count
        )
        assert ratio < 4.0


class TestWorksharingScaling:
    SRC = r"""
    int main(void) {
      long acc = 0;
      #pragma omp parallel for reduction(+: acc)
      for (int i = 0; i < 1200; i += 1)
        acc += i;
      printf("%d\n", (int)acc);
      return 0;
    }
    """

    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_bench_team_size_sweep(self, benchmark, threads):
        result = benchmark(
            lambda: run_source(self.SRC, num_threads=threads)
        )
        benchmark.extra_info["threads"] = threads
        benchmark.extra_info["instructions"] = (
            profiled_instruction_count(result)
        )
        assert int(result.stdout) == sum(range(1200))

    def test_per_thread_work_shrinks_with_team(self):
        """The simulated total instruction count stays ~flat (it is the
        sum over threads), but each thread's slice shrinks ~1/T, visible
        through the static partition."""
        from repro.runtime.schedule import static_partition

        for threads in (1, 2, 4, 8):
            sizes = []
            for t in range(threads):
                lb, ub, _ = static_partition(0, 1199, threads, t)
                sizes.append(max(0, ub - lb + 1))
            assert sum(sizes) == 1200
            assert max(sizes) <= (1200 + threads - 1) // threads + 1
