"""Engine-racing benchmarks: interpreter vs closure-compiled engine.

The pytest-benchmark companion to ``tools/exec_bench.py``: the same
corpus shape (a loop-nest kernel and a worksharing kernel) timed per
engine with the retired-instruction count recorded in ``extra_info``.
Both engines execute identical instruction streams — the recorded
ratio is pure dispatch overhead, which is exactly what the closure
engine exists to remove (``BENCH_exec.json`` tracks the gate).
"""

import pytest

from benchmarks.conftest import (
    make_loop_nest_source,
    profiled_instruction_count,
)
from repro.exec import create_interpreter
from repro.midend import default_pass_pipeline
from repro.pipeline import compile_source, run_source

pytestmark = pytest.mark.exec_differential

WORKSHARING = r"""
int main(void) {
  long sum = 0;
  #pragma omp parallel for reduction(+: sum) schedule(static) \
      num_threads(3)
  for (int i = 0; i < 600; i += 1)
    sum += i * 5 - 2;
  printf("%d\n", (int)sum);
  return 0;
}
"""


def _compiled_module(source: str):
    result = compile_source(source)
    default_pass_pipeline(remarks=result.diagnostics.remarks).run(
        result.module
    )
    return result.module


class TestEngineDispatchOverhead:
    @pytest.mark.parametrize("engine", ["interp", "closures"])
    def test_bench_loop_nest(self, benchmark, engine):
        module = _compiled_module(
            make_loop_nest_source(depth=2, extent=24)
        )

        def execute():
            interp = create_interpreter(module, engine=engine)
            assert interp.run("main", []) == 0
            return interp

        interp = benchmark(execute)
        benchmark.extra_info["engine"] = engine
        benchmark.extra_info["instructions"] = (
            interp.instruction_count
        )

    @pytest.mark.parametrize("engine", ["interp", "closures"])
    def test_bench_worksharing(self, benchmark, engine):
        module = _compiled_module(WORKSHARING)

        def execute():
            interp = create_interpreter(module, engine=engine)
            interp.omp.num_threads = 3
            assert interp.run("main", []) == 0
            return interp

        interp = benchmark(execute)
        benchmark.extra_info["engine"] = engine
        benchmark.extra_info["instructions"] = (
            interp.instruction_count
        )

    def test_engines_retire_identical_instruction_streams(self):
        """The precondition that makes the timing ratio meaningful."""
        source = make_loop_nest_source(depth=2, extent=16)
        a = run_source(source, exec_engine="interp")
        b = run_source(source, exec_engine="closures")
        assert a.stdout == b.stdout
        assert profiled_instruction_count(
            a
        ) == profiled_instruction_count(b)
