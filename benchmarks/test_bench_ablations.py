"""Ablation benchmarks for the design choices DESIGN.md calls out.

* IRBuilder on-the-fly folding on/off (paper §1.3: folding "avoids
  creating instructions that would later be optimized away anyway") —
  measured as static instruction count of the emitted module.
* Remainder-scheme vs conditional-exit unrolling — dynamic instruction
  counts of the two mid-end strategies on the same loop.
* Representation cost scaling with loop-nest depth (Sema work per
  representation).
"""

import pytest

from repro.pipeline import compile_source, run_source
from benchmarks.conftest import make_loop_nest_source


def static_instruction_count(module) -> int:
    return sum(
        len(block.instructions)
        for fn in module.functions.values()
        for block in fn.blocks
    )


class TestIRBuilderFoldingAblation:
    SRC = r"""
    int main(void) {
      int x = (3 + 4) * 2;
      int arr[8];
      for (int i = 0 * 1; i < 8 * 1 + 0; i += 1 + 0)
        arr[i] = i * 1 + (2 - 2);
      int sum = 0;
      #pragma omp unroll partial(2 + 2)
      for (int i = 0; i < 8; i += 1) sum += arr[i] + (10 / 2);
      printf("%d %d\n", x, sum);
      return 0;
    }
    """

    def _compile(self, folding: bool):
        import repro.codegen.function as cgf_mod
        from repro.ir.irbuilder import IRBuilder

        original_init = IRBuilder.__init__

        def patched(self_b, module):
            original_init(self_b, module)
            self_b.folding_enabled = folding

        IRBuilder.__init__ = patched
        try:
            return compile_source(self.SRC)
        finally:
            IRBuilder.__init__ = original_init

    def test_bench_with_folding(self, benchmark):
        result = benchmark(lambda: self._compile(True))
        count = static_instruction_count(result.module)
        benchmark.extra_info["static_instructions"] = count

    def test_bench_without_folding(self, benchmark):
        result = benchmark(lambda: self._compile(False))
        count = static_instruction_count(result.module)
        benchmark.extra_info["static_instructions"] = count

    def test_folding_emits_fewer_instructions(self):
        folded = static_instruction_count(self._compile(True).module)
        unfolded = static_instruction_count(
            self._compile(False).module
        )
        assert folded < unfolded
        # Semantics unchanged either way.
        from repro.interp import Interpreter

        out_f = Interpreter(self._compile(True).module)
        out_f.run("main")
        out_u = Interpreter(self._compile(False).module)
        out_u.run("main")
        assert out_f.output() == out_u.output()


class TestUnrollSchemeAblation:
    """Remainder scheme (simple-condition loops) vs conditional-exit
    scheme (compound conditions) on equivalent workloads."""

    REMAINDER_ELIGIBLE = r"""
    int main(void) {
      long acc = 0;
      #pragma clang loop unroll_count(4)
      for (int i = 0; i < 997; i += 1) acc += i;
      printf("%d\n", (int)acc);
      return 0;
    }
    """
    # The && in the condition forces the conditional-exit scheme.
    CONDITIONAL_ONLY = r"""
    int main(void) {
      long acc = 0;
      int limit = 997;
      #pragma clang loop unroll_count(4)
      for (int i = 0; i < 997 && i < limit; i += 1) acc += i;
      printf("%d\n", (int)acc);
      return 0;
    }
    """

    def test_bench_remainder_scheme(self, benchmark):
        result = benchmark(
            lambda: run_source(
                self.REMAINDER_ELIGIBLE, openmp=False, optimize=True
            )
        )
        benchmark.extra_info["instructions"] = result.instruction_count
        benchmark.extra_info["scheme"] = "remainder"

    def test_bench_conditional_scheme(self, benchmark):
        result = benchmark(
            lambda: run_source(
                self.CONDITIONAL_ONLY, openmp=False, optimize=True
            )
        )
        benchmark.extra_info["instructions"] = result.instruction_count
        benchmark.extra_info["scheme"] = "conditional-exit"

    def test_schemes_selected_as_designed(self):
        from repro.midend import LoopUnrollPass

        for src, expect_remainder in (
            (self.REMAINDER_ELIGIBLE, True),
            (self.CONDITIONAL_ONLY, False),
        ):
            result = compile_source(src, openmp=False)
            pass_ = LoopUnrollPass()
            pass_.run_on_function(result.module.get_function("main"))
            if expect_remainder:
                assert pass_.stats.partially_unrolled == 1
            else:
                assert pass_.stats.conditionally_unrolled == 1

    def test_remainder_beats_conditional(self):
        """The remainder scheme drops the per-copy checks; it must
        execute fewer instructions than conditional-exit on the same
        trip count."""
        remainder = run_source(
            self.REMAINDER_ELIGIBLE, openmp=False, optimize=True
        )
        conditional = run_source(
            self.CONDITIONAL_ONLY, openmp=False, optimize=True
        )
        assert remainder.stdout == conditional.stdout
        assert (
            remainder.instruction_count
            < conditional.instruction_count
        )


class TestNestDepthScaling:
    @pytest.mark.parametrize("depth", [1, 2, 3])
    @pytest.mark.parametrize("irbuilder", [False, True])
    def test_bench_sema_scaling(self, benchmark, depth, irbuilder):
        src = make_loop_nest_source(
            depth, extent=4, pragma="#pragma omp parallel for"
        )
        benchmark.extra_info["depth"] = depth
        benchmark.extra_info["representation"] = (
            "irbuilder" if irbuilder else "shadow"
        )
        result = benchmark(
            lambda: compile_source(
                src, syntax_only=True, enable_irbuilder=irbuilder
            )
        )
        assert result.ok

    @pytest.mark.parametrize("depth", [2, 3])
    def test_collapse_executes_correctly_at_depth(self, depth):
        pragma = (
            f"#pragma omp parallel for collapse({depth}) "
            "reduction(+: acc)"
        )
        src = make_loop_nest_source(depth, extent=3, pragma=pragma)
        expected = 0
        idx = [0] * depth

        def rec(level):
            nonlocal expected
            if level == depth:
                expected += sum(idx)
                return
            for v in range(3):
                idx[level] = v
                rec(level + 1)

        rec(0)
        for irb in (False, True):
            result = run_source(src, enable_irbuilder=irb)
            assert int(result.stdout) == expected
