"""E5/E15/E9: cost of the transformation machinery itself.

* shadow transform construction (Sema-side tile/unroll builders),
* OpenMPIRBuilder skeleton creation + tile_loops/collapse_loops,
* the AST dump of the transformed tree (paper listings).
"""

import pytest

from repro.astlib import stmts as s
from repro.astlib.dump import dump_ast
from repro.core.shadow import build_tile_transform, build_unroll_transform
from repro.ir import FunctionType, IRBuilder, Module, i64, void_t
from repro.ompirbuilder import OpenMPIRBuilder
from repro.pipeline import compile_source
from repro.sema.canonical_loop import analyze_canonical_loop, collect_loop_nest


def analyzed_nest(depth: int):
    lines = ["void body(int);", "void f(void) {"]
    for d in range(depth):
        lines.append(
            f"for (int i{d} = 0; i{d} < 64; i{d} += 1)"
        )
    lines.append("  body(i0);")
    lines.append("}")
    result = compile_source("\n".join(lines), syntax_only=True)
    loop = result.function("f").body.statements[0]
    analyses = collect_loop_nest(
        result.ast_context, result.diagnostics, loop, depth, "tile"
    )
    return result.ast_context, analyses


class TestShadowTransformConstruction:
    def test_bench_unroll_transform_build(self, benchmark):
        ctx, analyses = analyzed_nest(1)
        result = benchmark(
            lambda: build_unroll_transform(
                ctx, analyses[0], 4, full=False
            )
        )
        assert result.transformed_stmt is not None

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_bench_tile_transform_build(self, benchmark, depth):
        ctx, analyses = analyzed_nest(depth)
        sizes = [4] * depth
        result = benchmark(
            lambda: build_tile_transform(ctx, analyses, sizes)
        )
        assert result.num_generated_loops == 2 * depth
        benchmark.extra_info["generated_loops"] = (
            result.num_generated_loops
        )

    def test_bench_transformed_ast_dump(self, benchmark):
        """Regenerating the paper's transformed-AST listing."""
        ctx, analyses = analyzed_nest(1)
        transform = build_unroll_transform(
            ctx, analyses[0], 2, full=False
        )
        dump = benchmark(
            lambda: dump_ast(transform.transformed_stmt)
        )
        assert "unrolled.iv.i0" in dump
        assert "LoopHintAttr" in dump


class TestOpenMPIRBuilderTransforms:
    def fresh_loop(self):
        mod = Module("bench")
        fn = mod.add_function("f", FunctionType(void_t, [i64]))
        sink = mod.add_function("sink", FunctionType(void_t, [i64]))
        entry = fn.append_block("entry")
        b = IRBuilder(mod)
        b.set_insert_point(entry)
        ompb = OpenMPIRBuilder(mod)
        cli = ompb.create_canonical_loop(
            b, fn.args[0], lambda bld, iv: bld.call(sink, [iv])
        )
        b.ret()
        return mod, ompb, cli

    def test_bench_create_canonical_loop(self, benchmark):
        def build():
            mod = Module("bench")
            fn = mod.add_function("f", FunctionType(void_t, [i64]))
            entry = fn.append_block("entry")
            b = IRBuilder(mod)
            b.set_insert_point(entry)
            ompb = OpenMPIRBuilder(mod)
            cli = ompb.create_canonical_loop(b, fn.args[0], None)
            b.ret()
            return cli

        cli = benchmark(build)
        cli.assert_ok()

    def test_bench_tile_loops_ir(self, benchmark):
        def build_and_tile():
            mod, ompb, cli = self.fresh_loop()
            b = IRBuilder(mod)
            return ompb.tile_loops(b, [cli], [8])

        result = benchmark(build_and_tile)
        assert len(result) == 2

    def test_bench_unroll_loop_partial_ir(self, benchmark):
        def build_and_unroll():
            mod, ompb, cli = self.fresh_loop()
            b = IRBuilder(mod)
            return ompb.unroll_loop_partial(b, cli, 4)

        cli = benchmark(build_and_unroll)
        cli.assert_ok()

    def test_bench_collapse_loops_ir(self, benchmark):
        def build_nest_and_collapse():
            mod = Module("bench")
            fn = mod.add_function("f", FunctionType(void_t, [i64]))
            sink = mod.add_function("sink", FunctionType(void_t, [i64]))
            entry = fn.append_block("entry")
            b = IRBuilder(mod)
            b.set_insert_point(entry)
            ompb = OpenMPIRBuilder(mod)
            outer = ompb.create_canonical_loop(
                b, fn.args[0], None, "l0"
            )
            b.set_insert_point(outer.body, 0)
            inner = ompb.create_canonical_loop(
                b, fn.args[0], None, "l1"
            )
            b.set_insert_point(inner.body, 0)
            b.call(sink, [inner.indvar])
            b.set_insert_point(outer.after)
            b.ret()
            b2 = IRBuilder(mod)
            return ompb.collapse_loops(b2, [outer, inner])

        cli = benchmark(build_nest_and_collapse)
        cli.assert_ok()
