"""Schedule-choice and tile-size benches (the paper's motivation: loop
transformation directives "make it easier to experiment with different
optimizations to find the best-performing one").

* Imbalanced workload: dynamic/guided beat static on max-per-thread work
  (the who-wins shape every OpenMP text reports).
* Tile-size sweep on a blocked matrix traversal: reuse-distance proxy
  improves with tiling, with a sweet spot (crossover) between tiny and
  huge tiles.
"""

import pytest

from repro.pipeline import run_source
from repro.runtime.schedule import (
    DispatchState,
    ScheduleKindRT,
    static_partition,
)


def triangular_work(i):
    """Iteration i costs i units (classic imbalanced workload)."""
    return i


def max_thread_work_static(n, threads):
    worst = 0
    for t in range(threads):
        lb, ub, _ = static_partition(0, n - 1, threads, t)
        work = sum(triangular_work(i) for i in range(lb, ub + 1))
        worst = max(worst, work)
    return worst


def max_thread_work_dispatch(n, threads, kind, chunk):
    state = DispatchState(
        kind=kind,
        lower=0,
        upper=n - 1,
        stride=1,
        chunk=chunk,
        num_threads=threads,
    )
    work = [0] * threads
    # Greedy simulation: the least-loaded thread asks next (models the
    # "finish early, grab more" dynamic of real dynamic scheduling).
    while True:
        t = min(range(threads), key=lambda k: work[k])
        nxt = state.next_chunk(t)
        if nxt is None:
            break
        lb, ub, _ = nxt
        work[t] += sum(triangular_work(i) for i in range(lb, ub + 1))
    return max(work)


class TestScheduleChoiceShape:
    N = 256
    THREADS = 4

    def test_bench_static_on_imbalanced(self, benchmark):
        worst = benchmark(
            lambda: max_thread_work_static(self.N, self.THREADS)
        )
        benchmark.extra_info["max_thread_work"] = worst

    def test_bench_dynamic_on_imbalanced(self, benchmark):
        worst = benchmark(
            lambda: max_thread_work_dispatch(
                self.N,
                self.THREADS,
                ScheduleKindRT.DYNAMIC_CHUNKED,
                4,
            )
        )
        benchmark.extra_info["max_thread_work"] = worst

    def test_bench_guided_on_imbalanced(self, benchmark):
        worst = benchmark(
            lambda: max_thread_work_dispatch(
                self.N,
                self.THREADS,
                ScheduleKindRT.GUIDED_CHUNKED,
                1,
            )
        )
        benchmark.extra_info["max_thread_work"] = worst

    def test_dynamic_beats_static_on_imbalance(self):
        """The who-wins shape: dynamic's max-thread-work approaches the
        ideal total/T; static's is ~2x that on a triangular workload."""
        total = sum(range(self.N))
        ideal = total / self.THREADS
        static_worst = max_thread_work_static(self.N, self.THREADS)
        dynamic_worst = max_thread_work_dispatch(
            self.N, self.THREADS, ScheduleKindRT.DYNAMIC_CHUNKED, 4
        )
        assert static_worst > 1.5 * ideal
        assert dynamic_worst < 1.3 * ideal
        assert dynamic_worst < static_worst

    def test_executed_schedule_agrees_with_model(self):
        """Cross-check: the compiled program under schedule(dynamic)
        distributes the imbalanced iterations more evenly than static
        (measured via per-thread iteration-cost sums)."""
        src = r"""
        int main(void) {
          int work[4] = {0, 0, 0, 0};
          #pragma omp parallel for schedule(%s) num_threads(4)
          for (int i = 0; i < 64; i += 1) {
            int me = omp_get_thread_num();
            int cost = i;
            #pragma omp critical
            { work[me] += cost; }
          }
          int mx = 0;
          for (int t = 0; t < 4; t += 1) if (work[t] > mx) mx = work[t];
          printf("%%d\n", mx);
          return 0;
        }
        """
        static_max = int(run_source(src % "static").stdout)
        dynamic_max = int(run_source(src % "dynamic, 2").stdout)
        assert dynamic_max <= static_max


BLOCKED_TRAVERSAL = r"""
int main(void) {
  /* Walk a matrix in tiled order and measure a reuse-distance proxy:
     sum of |linear index delta| between consecutive touches.  Smaller
     deltas = better locality. */
  long reuse = 0;
  int last = 0;
  %(pragma)s
  for (int i = 0; i < %(n)d; i += 1)
    for (int j = 0; j < %(n)d; j += 1) {
      int addr = j * %(n)d + i;   /* column-major access from row loops */
      int delta = addr - last;
      if (delta < 0) delta = -delta;
      reuse += delta;
      last = addr;
    }
  printf("%%d\n", (int)reuse);
  return 0;
}
"""


class TestTileSizeSweep:
    N = 24

    def measure(self, pragma):
        src = BLOCKED_TRAVERSAL % {"pragma": pragma, "n": self.N}
        return int(run_source(src).stdout)

    @pytest.mark.parametrize("size", [0, 2, 4, 8])
    def test_bench_tile_size(self, benchmark, size):
        pragma = (
            f"#pragma omp tile sizes({size}, {size})" if size else ""
        )
        reuse = benchmark(lambda: self.measure(pragma))
        benchmark.extra_info["tile"] = size
        benchmark.extra_info["reuse_distance"] = reuse

    def test_tiling_improves_locality_proxy(self):
        """The shape: any square tile improves the column-major reuse
        proxy over the untiled row-major traversal, and moderate tiles
        beat both extremes."""
        untiled = self.measure("")
        tiled = {
            size: self.measure(
                f"#pragma omp tile sizes({size}, {size})"
            )
            for size in (2, 4, 8)
        }
        assert all(v < untiled for v in tiled.values())
        # Full-matrix "tiles" degenerate back to the untiled order.
        degenerate = self.measure(
            f"#pragma omp tile sizes({self.N}, {self.N})"
        )
        assert degenerate == untiled
