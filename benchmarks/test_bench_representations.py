"""E14 (paper §3): the two representations compared.

* AST size: the shadow representation's hidden helper nodes vs the
  canonical representation's 3 meta nodes (distance fn, user value fn,
  user variable ref) — regenerating the paper's "reduced from the 36
  shadow AST nodes" claim as measured numbers.
* Sema + CodeGen time under each representation.
"""

import pytest

from repro.astlib import omp
from repro.astlib.visitor import count_nodes
from repro.pipeline import compile_source

WORKSHARE_SRC = r"""
void body(int);
void f(int N) {
  #pragma omp parallel for
  for (int i = 0; i < N; i += 1)
    body(i);
}
"""

TRANSFORM_SRC = r"""
void body(int);
void f(int N) {
  #pragma omp unroll partial(4)
  for (int i = 0; i < N; i += 1)
    body(i);
}
"""


def first_directive(result):
    return result.function("f").body.statements[0]


class TestASTSize:
    def test_bench_shadow_ast_size(self, benchmark):
        def measure():
            result = compile_source(
                WORKSHARE_SRC, syntax_only=True, enable_irbuilder=False
            )
            directive = first_directive(result)
            return (
                directive.shadow_node_count(),
                count_nodes(directive, include_shadow=True),
            )

        shadow_count, total = benchmark(measure)
        benchmark.extra_info["helper_nodes"] = shadow_count
        benchmark.extra_info["total_nodes_with_shadow"] = total
        benchmark.extra_info["capacity_paper_claims"] = (
            omp.OMPLoopDirective.shadow_capacity(1)
        )
        assert shadow_count >= 15

    def test_bench_canonical_ast_size(self, benchmark):
        def measure():
            result = compile_source(
                WORKSHARE_SRC, syntax_only=True, enable_irbuilder=True
            )
            directive = first_directive(result)
            wrapper = directive.captured_stmt.body
            while not isinstance(wrapper, omp.OMPCanonicalLoop):
                wrapper = list(wrapper.children())[0]
            return (
                wrapper.meta_node_count(),
                count_nodes(directive, include_shadow=True),
            )

        meta_count, total = benchmark(measure)
        benchmark.extra_info["meta_nodes"] = meta_count
        benchmark.extra_info["total_nodes"] = total
        assert meta_count == 3

    def test_paper_ratio_holds(self):
        """The paper's headline: ~36 slots vs 3 meta nodes (12x)."""
        shadow_capacity = omp.OMPLoopDirective.shadow_capacity(1)
        assert shadow_capacity / 3 >= 10


class TestCompileTime:
    @pytest.mark.parametrize("irbuilder", [False, True])
    def test_bench_sema_per_representation(self, benchmark, irbuilder):
        benchmark.extra_info["representation"] = (
            "irbuilder" if irbuilder else "shadow"
        )
        benchmark(
            lambda: compile_source(
                WORKSHARE_SRC,
                syntax_only=True,
                enable_irbuilder=irbuilder,
            )
        )

    @pytest.mark.parametrize("irbuilder", [False, True])
    def test_bench_full_compile_per_representation(
        self, benchmark, irbuilder
    ):
        benchmark.extra_info["representation"] = (
            "irbuilder" if irbuilder else "shadow"
        )
        benchmark(
            lambda: compile_source(
                WORKSHARE_SRC, enable_irbuilder=irbuilder
            )
        )

    @pytest.mark.parametrize("irbuilder", [False, True])
    def test_bench_transform_compile(self, benchmark, irbuilder):
        benchmark.extra_info["representation"] = (
            "irbuilder" if irbuilder else "shadow"
        )
        benchmark(
            lambda: compile_source(
                TRANSFORM_SRC, enable_irbuilder=irbuilder
            )
        )
