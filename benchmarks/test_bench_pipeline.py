"""E1 (paper Fig. 1): per-layer cost of the compilation pipeline.

Regenerates the component-layer picture as a cost profile: how much each
layer (Lexer, Preprocessor, Parser+Sema, CodeGen) contributes for a
representative OpenMP translation unit.
"""

import pytest

from repro.astlib.context import ASTContext
from repro.codegen import CodeGenModule, CodeGenOptions
from repro.diagnostics import DiagnosticsEngine
from repro.lex import Lexer
from repro.parse import Parser
from repro.preprocessor import Preprocessor, PreprocessorOptions
from repro.sema import Sema
from repro.sourcemgr import FileManager, MemoryBuffer, SourceManager

SOURCE = r"""
#define N 256
void body(int i, int j);
void kernel(void) {
  #pragma omp parallel for schedule(static)
  for (int i = 0; i < N; i += 1)
    for (int j = 0; j < N; j += 1)
      body(i, j);
}
void transform(void) {
  #pragma omp tile sizes(8, 8)
  for (int i = 0; i < N; i += 1)
    for (int j = 0; j < N; j += 1)
      body(i, j);
}
void unrolled(int M) {
  #pragma omp unroll partial(4)
  for (int k = 0; k < M; k += 1)
    body(k, k);
}
""" * 4  # replicate for a non-trivial TU


def relex(src=SOURCE):
    sm = SourceManager()
    fid = sm.create_main_file(MemoryBuffer("bench.c", src))
    diags = DiagnosticsEngine(sm)
    return Lexer(sm, fid, diags).lex_all()


def preprocess(src=SOURCE):
    sm = SourceManager()
    fm = FileManager()
    diags = DiagnosticsEngine(sm)
    pp = Preprocessor(sm, fm, diags, PreprocessorOptions())
    pp.enter_source(src, "bench.c")
    return pp.lex_all(), sm, diags


def parse_and_sema(tokens, sm, diags, irbuilder=False):
    ctx = ASTContext()
    sema = Sema(ctx, diags)
    sema.openmp.use_irbuilder = irbuilder
    parser = Parser(tokens, sema, diags)
    tu = parser.parse_translation_unit()
    return ctx, tu


# NB: the replicated SOURCE redefines functions; compile each copy under
# a fresh Sema instead for the full-pipeline benches.
SINGLE = SOURCE[: len(SOURCE) // 4]


class TestLayerCosts:
    def test_bench_lexer_layer(self, benchmark):
        tokens = benchmark(relex)
        benchmark.extra_info["tokens"] = len(tokens)

    def test_bench_preprocessor_layer(self, benchmark):
        result = benchmark(preprocess)
        benchmark.extra_info["tokens"] = len(result[0])

    def test_bench_parser_sema_layer(self, benchmark):
        def run():
            tokens, sm, diags = preprocess(SINGLE)
            return parse_and_sema(tokens, sm, diags)

        ctx, tu = benchmark(run)
        benchmark.extra_info["functions"] = len(list(tu.functions()))

    def test_bench_codegen_layer(self, benchmark):
        tokens, sm, diags = preprocess(SINGLE)
        ctx, tu = parse_and_sema(tokens, sm, diags)

        def run():
            cgm = CodeGenModule(ctx, diags, CodeGenOptions())
            return cgm.emit_translation_unit(tu)

        module = benchmark(run)
        benchmark.extra_info["ir_functions"] = len(module.functions)

    def test_bench_full_pipeline(self, benchmark):
        from repro.pipeline import compile_source

        result = benchmark(lambda: compile_source(SINGLE))
        benchmark.extra_info["ok"] = result.ok
