"""Benchmark helpers (pytest-benchmark harness).

Each benchmark regenerates one of the paper's artifacts (see DESIGN.md's
experiment index) and records the relevant *domain* metric — AST node
counts, shadow-node counts, dynamic instruction counts, per-thread work —
in ``benchmark.extra_info`` next to the wall-clock timing.  Absolute times
are Python-interpreter times and not comparable to the paper's C++
implementation; shapes and ratios are what EXPERIMENTS.md records.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.pipeline import compile_source, run_source  # noqa: E402


def profiled_instruction_count(result) -> int:
    """Dynamic instruction count from the execution-profile API.

    Cross-checks the profile against the legacy ``instruction_count``
    counter (they are views over the same per-thread data, so any
    divergence is an instrumentation bug) before returning it.
    """
    profile_total = result.profile.total_instructions
    assert profile_total == result.instruction_count, (
        f"profile total {profile_total} != legacy counter "
        f"{result.instruction_count}"
    )
    return profile_total


def make_loop_nest_source(depth: int, extent: int, pragma: str = "") -> str:
    """A perfectly nested `depth`-deep loop nest summing its indices."""
    lines = ["int main(void) {", "  long acc = 0;"]
    if pragma:
        lines.append(f"  {pragma}")
    for d in range(depth):
        lines.append(
            f"  for (int i{d} = 0; i{d} < {extent}; i{d} += 1)"
        )
    body = " + ".join(f"i{d}" for d in range(depth))
    lines.append(f"    acc += {body};")
    lines.append('  printf("%d\\n", (int)acc);')
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines)
